"""1R1W-SKSS-LB: the paper's contribution (Section IV).

A single kernel computes the whole SAT.  CUDA blocks acquire tiles through an
``atomicAdd`` counter in the diagonal-major serial order of Figure 9, so every
inter-block dependency points to a tile with a smaller serial — owned by a
block that is already resident or retired — and soft synchronization cannot
deadlock under any dispatcher.

Per tile ``T(I, J)`` a block executes (statuses in brackets):

====================  ========================================================
Step 1                copy the tile to shared memory (diagonal arrangement),
                      fusing the column sums; compute the row sums
Step 2.A.1 [R=1]      publish ``LRS(I, J)``
Step 2.B.1 [C=1]      publish ``LCS(I, J)``
Step 2.A.2            look back left for ``GRS(I, J-1)`` (Figure 10)
Step 2.A.3 [R=2]      publish ``GRS(I, J) = GRS(I, J-1) + LRS(I, J)``
Step 2.B.2            look back up for ``GCS(I-1, J)``
Step 2.B.3 [C=2]      publish ``GCS(I, J) = GCS(I-1, J) + LCS(I, J)``
Step 3.1   [R=3]      publish ``GLS(I, J) = Σ(GRS(I,J-1)) + Σ(GCS(I-1,J)) +
                      Σ(LRS(I,J))`` (warp reduction; Figure 11)
Step 3.2              look back along the diagonal for ``GS(I-1, J-1)``
Step 3.3   [R=4]      publish ``GS(I, J) = GS(I-1, J-1) + GLS(I, J)``
Step 4                assemble ``GSAT(I, J)`` in shared memory and write it out
====================  ========================================================

Exactly three ``__syncthreads()`` barriers separate Steps 1, 2–3 and 4, as the
paper notes.  Global traffic is one read and one write per matrix element plus
``O(n²/W)`` for the published vectors — the 1R1W optimum.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.gpusim.block import BlockContext
from repro.gpusim.counters import LaunchSummary
from repro.gpusim.kernel import GPU
from repro.gpusim.memory import GlobalBuffer
from repro.primitives import smem
from repro.primitives.tile import TileGrid, assemble_gsat_tile
from repro.sat.base import SATAlgorithm
from repro.sat.tilecommon import (C_GCS, C_LCS, R_GLS, R_GRS, R_GS, R_LRS,
                                  TileScratch, alloc_scratch,
                                  assemble_gsat_in_shared, col_lookback,
                                  diag_lookback, publish_scalar,
                                  publish_vector, row_lookback,
                                  serial_to_tile, tile_serial_number)


def lane_vector_sum(ctx: BlockContext, values: np.ndarray) -> float:
    """Sum a length-``W`` register vector with warp reductions.

    ``W`` is a multiple of the warp size; each warp reduces its 32 lanes with
    the warp prefix-sum algorithm and the (at most 4) warp totals are added.
    """
    w = ctx.device.warp_size
    reduced = ctx.warp_reduce_sum(np.asarray(values, dtype=np.float64))
    totals = reduced[::w]
    ctx.charge(len(totals) * ctx.costs.compute_step)
    return float(totals.sum())


#: Tile acquisition orders (the paper uses diagonal-major, Figure 9).
#: ``rowmajor`` is also deadlock-free (its dependencies still point to
#: smaller serials) but pipelines the wavefront worse; ``reversed`` violates
#: the invariant and deadlocks once residency is bounded — kept for the
#: ablation/tests.  ``swapped`` is the subtle planted bug: diagonal order
#: with serials 1 and 3 exchanged, which only deadlocks when residency is
#: exactly one block — random schedules at full residency never hit it, but
#: exhaustive model checking does (see :mod:`repro.analysis.modelcheck`).
ACQUISITION_ORDERS = ("diagonal", "rowmajor", "reversed", "swapped")


def acquisition_tile(serial: int, t: int, order: str,
                     tc: int | None = None) -> tuple[int, int]:
    """Map an atomicAdd ticket to a tile under the chosen acquisition order.

    ``tc`` (tile columns) defaults to ``t`` for the legacy square grid.
    """
    tc = t if tc is None else tc
    if order == "diagonal":
        return serial_to_tile(serial, t, tc)
    if order == "rowmajor":
        return divmod(serial, tc)
    if order == "reversed":
        return serial_to_tile(t * tc - 1 - serial, t, tc)
    if order == "swapped":
        # Looks like a harmless scheduling tweak: acquire the second and
        # fourth tiles in the opposite order.  With >= 2 resident blocks the
        # look-back always finds a peer making progress, so every sampled
        # schedule succeeds; with exactly one resident block the walk from
        # the swapped-forward tile spins on a serial that will never run.
        if t * tc >= 4:
            serial = {1: 3, 3: 1}.get(serial, serial)
        return serial_to_tile(serial, t, tc)
    raise ConfigurationError(f"unknown acquisition order '{order}'")


def skss_lb_kernel(ctx: BlockContext, a: GlobalBuffer, b: GlobalBuffer,
                   sb: TileScratch, stride: int, layout: str = "diagonal",
                   acquisition: str = "diagonal"):
    """One CUDA block of the 1R1W-SKSS-LB kernel (loops acquiring tiles).

    ``stride`` is the buffer's row stride (its padded column count).
    """
    W, tr, tc = sb.W, sb.tr, sb.tc
    smem.alloc_tile(ctx, "tile", W)
    total = tr * tc
    while True:
        serial = ctx.atomic_add(sb.counter, 0, 1)
        if serial >= total:
            return
        I, J = acquisition_tile(serial, tr, acquisition, tc)

        # Step 1: tile to shared (fused LCS), then LRS; first barrier.
        lcs = smem.load_tile_with_col_sums(ctx, a, stride, W, I, J, "tile",
                                           layout)
        lrs = smem.tile_row_sums(ctx, "tile", W, layout)
        yield ctx.syncthreads()

        vec = sb.vec_idx(I, J)
        flag = sb.scalar_idx(I, J)

        # Steps 2.A.1 / 2.B.1: publish the local sums.
        publish_vector(ctx, sb.lrs, vec, lrs, sb.R, flag, R_LRS)
        publish_vector(ctx, sb.lcs, vec, lcs, sb.C, flag, C_LCS)

        # Steps 2.A.2 / 2.A.3: row look-back, publish GRS.
        grs_left = yield from row_lookback(ctx, sb, I, J)
        publish_vector(ctx, sb.grs, vec, grs_left + lrs, sb.R, flag, R_GRS)

        # Steps 2.B.2 / 2.B.3: column look-back, publish GCS.
        gcs_above = yield from col_lookback(ctx, sb, I, J)
        publish_vector(ctx, sb.gcs, vec, gcs_above + lcs, sb.C, flag, C_GCS)

        # Step 3.1: GLS from the three pairwise-summed vectors (Figure 11).
        pairwise = grs_left + gcs_above + lrs
        ctx.charge(2 * ctx.costs.compute_step)
        gls = lane_vector_sum(ctx, pairwise)
        publish_scalar(ctx, sb.gls, flag, gls, sb.R, flag, R_GLS)

        # Steps 3.2 / 3.3: diagonal look-back, publish GS.
        gs_corner = yield from diag_lookback(ctx, sb, I, J)
        publish_scalar(ctx, sb.gs, flag, gs_corner + gls, sb.R, flag, R_GS)
        yield ctx.syncthreads()

        # Step 4: GSAT in shared memory, write out; third barrier.
        assemble_gsat_in_shared(ctx, W, "tile", grs_left, gcs_above, gs_corner,
                                layout)
        yield ctx.syncthreads()
        smem.store_tile(ctx, b, stride, W, I, J, "tile", layout)


class SKSSLB1R1W(SATAlgorithm):
    """The paper's 1R1W-SKSS-LB algorithm: single kernel, soft sync + look-back."""

    name = "1R1W-SKSS-LB"

    def __init__(self, *, tile_width: int = 32,
                 threads_per_block: int | None = None,
                 layout: str = "diagonal",
                 grid_blocks: int | None = None,
                 acquisition: str = "diagonal") -> None:
        super().__init__(tile_width=tile_width, threads_per_block=threads_per_block)
        self.layout = layout
        self.grid_blocks = grid_blocks
        if acquisition not in ACQUISITION_ORDERS:
            raise ConfigurationError(
                f"unknown acquisition order '{acquisition}'; "
                f"choose from {ACQUISITION_ORDERS}")
        self.acquisition = acquisition

    def _run_device(self, gpu: GPU, a_buf: GlobalBuffer, b_buf: GlobalBuffer,
                    grid: TileGrid, report: LaunchSummary) -> None:
        sb = alloc_scratch(gpu, grid)
        blocks = self.grid_blocks or grid.num_tiles
        threads = min(self.block_threads(gpu.device.max_threads_per_block),
                      grid.W * grid.W)
        threads = max(threads, gpu.device.warp_size)
        report.add(gpu.launch(
            skss_lb_kernel, grid_blocks=blocks, threads_per_block=threads,
            args=(a_buf, b_buf, sb, grid.padded_cols, self.layout,
                  self.acquisition),
            name="skss_lb", shared_bytes_hint=grid.W * grid.W * 4))

    def _run_host(self, a: np.ndarray) -> np.ndarray:
        """Host dataflow: process tiles in serial order, maintaining the same
        published quantities (GRS/GCS/GS built incrementally, never read from
        an oracle)."""
        grid = TileGrid(rows=a.shape[0], cols=a.shape[1], W=self.tile_width)
        tr, tc, W = grid.tile_rows, grid.tile_cols, grid.W
        grs = np.zeros((tr, tc, W), dtype=a.dtype)
        gcs = np.zeros((tr, tc, W), dtype=a.dtype)
        gs = np.zeros((tr, tc), dtype=a.dtype)
        out = np.zeros_like(a)
        zeros = np.zeros(W, dtype=a.dtype)
        for serial in range(tr * tc):
            I, J = serial_to_tile(serial, tr, tc)
            tile = a[grid.tile_slice(I, J)]
            lrs = tile.sum(axis=1)
            lcs = tile.sum(axis=0)
            grs_left = grs[I, J - 1] if J > 0 else zeros
            gcs_above = gcs[I - 1, J] if I > 0 else zeros
            gs_corner = (gs[I - 1, J - 1] if I > 0 and J > 0
                         else a.dtype.type(0))
            grs[I, J] = grs_left + lrs
            gcs[I, J] = gcs_above + lcs
            gls = grs_left.sum() + gcs_above.sum() + lrs.sum()
            gs[I, J] = gs_corner + gls
            out[grid.tile_slice(I, J)] = assemble_gsat_tile(
                tile, grs_left, gcs_above, gs_corner)
        return out


#: Declared protocol shape, cross-checked against the kernel AST by
#: :func:`repro.analysis.protomodel.extract_kernel` — update BOTH when the
#: synchronization structure changes, or model checking refuses to run.
MODEL_HINTS = {
    "skss_lb_kernel": {
        "ticket": True,
        "publishes": (("lrs", "R", R_LRS), ("lcs", "C", C_LCS),
                      ("grs", "R", R_GRS), ("gcs", "C", C_GCS),
                      ("gls", "R", R_GLS), ("gs", "R", R_GS)),
        "walks": (("R", R_LRS, R_GRS, "lrs", "grs"),
                  ("C", C_LCS, C_GCS, "lcs", "gcs"),
                  ("R", R_GLS, R_GS, "gls", "gs")),
        "waits": (),
        "stores": ("b",),
        "loads": ("a",),
    },
}

#: Per-site traffic annotations for :mod:`repro.analysis.costcheck` (see
#: naive_2r2w.py for the convention).  The look-back walks are the only
#: schedule-dependent traffic in the whole suite: each walk executes at
#: least one step per tile with a non-trivial predecessor (every walk
#: terminates at its immediate neighbour) and at most the full distance back
#: to the matrix edge, hence the ``[lo, hi]`` step windows.
COST_HINTS = {
    "skss_lb_kernel": {
        "ctx.atomic_add(sb.counter, 0, 1)": {
            "count": lambda g: g.lb_atomics},
        "smem.load_tile_with_col_sums(ctx, a, stride, W, I, J, 'tile', "
        "layout)": {
            "count": lambda g: g.tiles, "width": lambda g: g.W2,
            "pattern": "coalesced"},
        "publish_vector(ctx, sb.lrs, vec, lrs, sb.R, flag, R_LRS)": {
            "count": lambda g: g.tiles, "width": lambda g: g.W,
            "pattern": "coalesced"},
        "publish_vector(ctx, sb.lcs, vec, lcs, sb.C, flag, C_LCS)": {
            "count": lambda g: g.tiles, "width": lambda g: g.W,
            "pattern": "coalesced"},
        "row_lookback(ctx, sb, I, J)": {
            "steps_lo": lambda g: g.lb_row_lo,
            "steps_hi": lambda g: g.lb_row_hi,
            "width": lambda g: g.W, "pattern": "coalesced"},
        "publish_vector(ctx, sb.grs, vec, grs_left + lrs, sb.R, flag, "
        "R_GRS)": {
            "count": lambda g: g.tiles, "width": lambda g: g.W,
            "pattern": "coalesced"},
        "col_lookback(ctx, sb, I, J)": {
            "steps_lo": lambda g: g.lb_col_lo,
            "steps_hi": lambda g: g.lb_col_hi,
            "width": lambda g: g.W, "pattern": "coalesced"},
        "publish_vector(ctx, sb.gcs, vec, gcs_above + lcs, sb.C, flag, "
        "C_GCS)": {
            "count": lambda g: g.tiles, "width": lambda g: g.W,
            "pattern": "coalesced"},
        "publish_scalar(ctx, sb.gls, flag, gls, sb.R, flag, R_GLS)": {
            "count": lambda g: g.tiles},
        "diag_lookback(ctx, sb, I, J)": {
            "steps_lo": lambda g: g.lb_diag_lo,
            "steps_hi": lambda g: g.lb_diag_hi,
            "width": 1, "pattern": "scalar"},
        "publish_scalar(ctx, sb.gs, flag, gs_corner + gls, sb.R, flag, "
        "R_GS)": {
            "count": lambda g: g.tiles},
        "smem.store_tile(ctx, b, stride, W, I, J, 'tile', layout)": {
            "count": lambda g: g.tiles, "width": lambda g: g.W2,
            "pattern": "coalesced"},
    },
}

#: Worst-path serial float additions per error site
#: (:mod:`repro.analysis.numcheck`).  Look-back chains cost one add per
#: walked tile and each publish applies its carry with a single add, so —
#: like 2R1W and unlike plain SKSS — the depth is O(t + W): carries chain
#: shallowly instead of re-scanning through every downstream tile.  The
#: lane_vector_sum depth covers the two un-extracted adds forming its
#: ``pairwise`` operand (grs_left + gcs_above + lrs).
ERR_HINTS = {
    "skss_lb_kernel": {
        "smem.load_tile_with_col_sums(ctx, a, stride, W, I, J, 'tile', "
        "layout)": {"depth": lambda g: g.W},
        "smem.tile_row_sums(ctx, 'tile', W, layout)": {
            "depth": lambda g: g.W},
        "row_lookback(ctx, sb, I, J)": {"depth": lambda g: g.t},
        "publish_vector(ctx, sb.grs, vec, grs_left + lrs, sb.R, flag, "
        "R_GRS)": {"depth": lambda g: g.t},
        "col_lookback(ctx, sb, I, J)": {"depth": lambda g: g.t},
        "publish_vector(ctx, sb.gcs, vec, gcs_above + lcs, sb.C, flag, "
        "C_GCS)": {"depth": lambda g: g.t},
        "lane_vector_sum(ctx, pairwise)": {"depth": lambda g: g.W + 2},
        "diag_lookback(ctx, sb, I, J)": {"depth": lambda g: g.t},
        "publish_scalar(ctx, sb.gs, flag, gs_corner + gls, sb.R, flag, "
        "R_GS)": {"depth": lambda g: g.t},
        "assemble_gsat_in_shared(ctx, W, 'tile', grs_left, gcs_above, "
        "gs_corner, layout)": {"depth": lambda g: 2 * g.W + 1},
    },
}

__all__ = ["SKSSLB1R1W", "skss_lb_kernel", "tile_serial_number",
           "serial_to_tile", "lane_vector_sum", "ACQUISITION_ORDERS",
           "acquisition_tile", "MODEL_HINTS", "COST_HINTS", "ERR_HINTS"]
