"""Shared machinery of the tile-based SAT algorithms (Sections III & IV).

All tile-based algorithms communicate the Table II region sums through global
scratch arrays laid out so that each tile's length-``W`` vector is contiguous
(coalesced to read):

* ``lrs``/``grs`` — shape ``(tr, tc, W)`` indexed ``[I, J, i]`` (row sums);
* ``lcs``/``gcs`` — shape ``(tr, tc, W)`` indexed ``[I, J, j]`` (column sums);
* ``ls``/``gls``/``gs`` — shape ``(tr, tc)`` scalars;
* ``R``/``C`` — ``(tr, tc)`` int8 status bytes (SKSS-LB protocol, Section IV).

The status protocol: ``R`` advances 1→2→3→4 after ``LRS``, ``GRS``, ``GLS``
and ``GS`` are published; ``C`` advances 1→2 after ``LCS`` and ``GCS``.
Statuses are monotone; every publish uses
:func:`repro.primitives.lookback.publish` (data, fence, flag).

This module also provides the diagonal-major tile serial numbering of
Figure 9 (with its inverse), and the three look-back walkers of Section IV
(left along the tile row, up the tile column, up-left along the diagonal).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.gpusim.block import BlockContext
from repro.gpusim.kernel import GPU
from repro.gpusim.memory import GlobalBuffer
from repro.primitives import smem
from repro.primitives.lookback import lookback_walk, publish
from repro.primitives.tile import TileGrid

# Status values of the R byte (row-sum / scalar chain).
R_LRS = 1
R_GRS = 2
R_GLS = 3
R_GS = 4
# Status values of the C byte (column-sum chain).
C_LCS = 1
C_GCS = 2


# -- Figure 9: diagonal-major serial numbers ---------------------------------


def diagonal_count(K: int, t: int, tc: int | None = None) -> int:
    """Number of tiles on anti-diagonal ``K`` of a ``t x tc`` tile grid.

    ``tc`` defaults to ``t`` (the paper's square grid).
    """
    tc = t if tc is None else tc
    if not 0 <= K <= t + tc - 2:
        raise ConfigurationError(f"diagonal {K} out of range for {t}x{tc}")
    return min(t - 1, K) - max(0, K - tc + 1) + 1


def tile_serial_number(I: int, J: int, t: int, tc: int | None = None) -> int:
    """Diagonal-major serial of tile ``T(I, J)`` (paper Figure 9).

    For tiles above the main anti-diagonal this equals the paper's closed
    form ``(I+J)(I+J+1)/2 + I``; past it the numbering continues consecutively
    along the (shorter) diagonals, matching the figure's 5x5 example.  For a
    rectangular ``t x tc`` grid the same diagonal-major order applies.
    """
    tc = t if tc is None else tc
    if not (0 <= I < t and 0 <= J < tc):
        raise ConfigurationError(
            f"tile ({I}, {J}) out of range for {t}x{tc}")
    K = I + J
    before = sum(diagonal_count(k, t, tc) for k in range(K))
    return before + (I - max(0, K - tc + 1))


def serial_to_tile(serial: int, t: int, tc: int | None = None) -> tuple[int, int]:
    """Inverse of :func:`tile_serial_number`."""
    tc = t if tc is None else tc
    if not 0 <= serial < t * tc:
        raise ConfigurationError(
            f"serial {serial} out of range for {t}x{tc}")
    K = 0
    remaining = serial
    while remaining >= diagonal_count(K, t, tc):
        remaining -= diagonal_count(K, t, tc)
        K += 1
    I = max(0, K - tc + 1) + remaining
    return I, K - I


# -- scratch buffers -----------------------------------------------------------


@dataclass
class TileScratch:
    """The global scratch arrays shared by a tile-based SAT run."""

    grid: TileGrid
    counter: GlobalBuffer
    lrs: GlobalBuffer
    grs: GlobalBuffer
    lcs: GlobalBuffer
    gcs: GlobalBuffer
    ls: GlobalBuffer
    gls: GlobalBuffer
    gs: GlobalBuffer
    R: GlobalBuffer
    C: GlobalBuffer

    @property
    def t(self) -> int:
        """Tiles per side of a square grid (legacy accessor)."""
        return self.grid.tiles_per_side

    @property
    def tr(self) -> int:
        return self.grid.tile_rows

    @property
    def tc(self) -> int:
        return self.grid.tile_cols

    @property
    def W(self) -> int:
        return self.grid.W

    def vec_base(self, I: int, J: int) -> int:
        """Flat base index of tile ``(I, J)``'s length-``W`` vector."""
        return (I * self.tc + J) * self.W

    def vec_idx(self, I: int, J: int) -> np.ndarray:
        return self.vec_base(I, J) + np.arange(self.W)

    def scalar_idx(self, I: int, J: int) -> int:
        return I * self.tc + J


_SCRATCH_FIELDS = ("counter", "lrs", "grs", "lcs", "gcs", "ls", "gls", "gs",
                   "R", "C")


def alloc_scratch(gpu: GPU, grid: TileGrid, tag: str = "_sat_s_") -> TileScratch:
    """Allocate the scratch arrays (freed by ``SATAlgorithm._cleanup``)."""
    tr, tc, W = grid.tile_rows, grid.tile_cols, grid.W
    # The counter and status bytes are memset to zero (the host-side
    # cudaMemset every soft-sync scheme needs); the value arrays are left
    # uninitialized — the publish protocol must write before anyone reads,
    # which the simulator's uninitialized-read detector can verify.
    return TileScratch(
        grid=grid,
        counter=gpu.alloc(tag + "counter", (1,), np.int64, fill=0,
                          kind="counter"),
        lrs=gpu.alloc(tag + "lrs", (tr, tc, W), np.float64),
        grs=gpu.alloc(tag + "grs", (tr, tc, W), np.float64),
        lcs=gpu.alloc(tag + "lcs", (tr, tc, W), np.float64),
        gcs=gpu.alloc(tag + "gcs", (tr, tc, W), np.float64),
        ls=gpu.alloc(tag + "ls", (tr, tc), np.float64),
        gls=gpu.alloc(tag + "gls", (tr, tc), np.float64),
        gs=gpu.alloc(tag + "gs", (tr, tc), np.float64),
        R=gpu.alloc(tag + "R", (tr, tc), np.int8, fill=0, kind="status",
                    status_values=(0, R_LRS, R_GRS, R_GLS, R_GS)),
        C=gpu.alloc(tag + "C", (tr, tc), np.int8, fill=0, kind="status",
                    status_values=(0, C_LCS, C_GCS)),
    )


# -- look-back walkers (Section IV, Steps 2.A.2 / 2.B.2 / 3.2) -----------------


def row_lookback(ctx: BlockContext, sb: TileScratch, I: int, J: int):
    """Compute ``GRS(I, J-1)`` by walking left over the R statuses (Fig. 10).

    Use with ``yield from``; returns a length-``W`` vector (zeros at ``J=0``).
    """
    if J == 0:
        return np.zeros(sb.W)
    return (yield from lookback_walk(
        ctx,
        steps=range(J - 1, -1, -1),
        status_buf=sb.R,
        status_index=lambda Jp: sb.scalar_idx(I, Jp),
        local_threshold=R_LRS,
        global_threshold=R_GRS,
        read_local=lambda Jp: ctx.gload(sb.lrs, sb.vec_idx(I, Jp)),
        read_global=lambda Jp: ctx.gload(sb.grs, sb.vec_idx(I, Jp)),
        zero=np.zeros(sb.W)))


def col_lookback(ctx: BlockContext, sb: TileScratch, I: int, J: int):
    """Compute ``GCS(I-1, J)`` by walking up over the C statuses."""
    if I == 0:
        return np.zeros(sb.W)
    return (yield from lookback_walk(
        ctx,
        steps=range(I - 1, -1, -1),
        status_buf=sb.C,
        status_index=lambda Ip: sb.scalar_idx(Ip, J),
        local_threshold=C_LCS,
        global_threshold=C_GCS,
        read_local=lambda Ip: ctx.gload(sb.lcs, sb.vec_idx(Ip, J)),
        read_global=lambda Ip: ctx.gload(sb.gcs, sb.vec_idx(Ip, J)),
        zero=np.zeros(sb.W)))


def diag_lookback(ctx: BlockContext, sb: TileScratch, I: int, J: int):
    """Compute ``GS(I-1, J-1)`` by walking up-left over the R statuses (Fig. 11).

    Telescoping: ``GS(I-1, J-1) = GS(I-k, J-k) + sum_{c=1..k-1} GLS(I-c, J-c)``
    for the first ``k`` whose tile has ``R >= 4``; if the walk reaches the
    matrix edge, the sum of the collected GLS values is itself the answer.
    """
    if I == 0 or J == 0:
        return 0.0
    return (yield from lookback_walk(
        ctx,
        steps=range(1, min(I, J) + 1),
        status_buf=sb.R,
        status_index=lambda k: sb.scalar_idx(I - k, J - k),
        local_threshold=R_GLS,
        global_threshold=R_GS,
        read_local=lambda k: ctx.gload_scalar(sb.gls, sb.scalar_idx(I - k, J - k)),
        read_global=lambda k: ctx.gload_scalar(sb.gs, sb.scalar_idx(I - k, J - k)),
        zero=0.0))


# -- shared-memory GSAT assembly (1R1W family Step 4) ----------------------------


def assemble_gsat_in_shared(ctx: BlockContext, W: int, name: str,
                            grs_left: np.ndarray, gcs_above: np.ndarray,
                            gs_corner: float, layout: str = "diagonal") -> None:
    """Turn the tile in shared memory into ``GSAT(I, J)`` in place.

    Adds ``GRS(I, J-1)`` to the leftmost column, ``GCS(I-1, J)`` to the topmost
    row and ``GS(I-1, J-1)`` to the corner, then computes row-wise and
    column-wise prefix sums (paper Section III.B; the caller supplies the
    barriers between phases).
    """
    smem.add_to_col(ctx, name, W, 0, grs_left, layout)
    smem.add_to_row(ctx, name, W, 0, gcs_above, layout)
    smem.add_to_element(ctx, name, W, 0, 0, gs_corner, layout)
    smem.tile_row_prefix_sums(ctx, name, W, layout)
    smem.tile_col_prefix_sums(ctx, name, W, layout)


def publish_vector(ctx: BlockContext, data_buf: GlobalBuffer, idx: np.ndarray,
                   values: np.ndarray, status_buf: GlobalBuffer,
                   status_idx: int, status_value: int) -> None:
    """Publish one length-``W`` vector under the data→fence→flag protocol."""
    publish(ctx, [(data_buf, idx, values)], status_buf, status_idx, status_value)


def publish_scalar(ctx: BlockContext, data_buf: GlobalBuffer, idx: int,
                   value, status_buf: GlobalBuffer, status_idx: int,
                   status_value: int) -> None:
    publish(ctx, [(data_buf, np.asarray([idx]), np.asarray([value]))],
            status_buf, status_idx, status_value)
