"""Historical import path for the bug corpus.

The corpus moved to :mod:`repro.analysis.bugcorpus` so the model checker and
the sanitize-mode fuzzer can replay entries by name without importing test
code; this shim keeps ``tests.analysis.bug_corpus`` working.
"""

from repro.analysis.bugcorpus import (BugSpec, CONTROL, CORPUS, get_spec,
                                      run_spec)

__all__ = ["BugSpec", "CONTROL", "CORPUS", "get_spec", "run_spec"]
