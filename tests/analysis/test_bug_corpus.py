"""Acceptance tests: every seeded bug is caught dynamically AND statically."""

from pathlib import Path

import pytest

import repro.analysis.bugcorpus as bugcorpus_module
from repro.analysis import RACE_RULES, lint_file
from repro.analysis.sanitizer import PROTOCOL_RULES

from .bug_corpus import CONTROL, CORPUS, run_spec

CORPUS_PATH = Path(bugcorpus_module.__file__)


@pytest.mark.parametrize("spec", CORPUS, ids=lambda s: s.name)
class TestDynamicDetection:
    def test_caught_under_relaxed(self, spec):
        rules = set()
        for seed in range(5):
            rules |= {f.rule for f in run_spec(spec, seed=seed).findings}
        assert rules & set(spec.expected_dynamic), \
            f"{spec.name}: expected one of {spec.expected_dynamic}, got {rules}"

    def test_caught_under_strong(self, spec):
        """Strong consistency hides the *symptom* (the stale value) but the
        sanitizer still reports the bug — that is its whole point."""
        rules = set()
        for seed in range(5):
            rules |= {f.rule
                      for f in run_spec(spec, seed=seed,
                                        consistency="strong").findings}
        assert rules & set(spec.expected_dynamic)

    def test_findings_are_classified(self, spec):
        s = run_spec(spec, seed=0)
        for f in s.findings:
            assert f.rule in RACE_RULES + PROTOCOL_RULES
            assert f.is_race == (f.rule in RACE_RULES)


class TestControlKernel:
    @pytest.mark.parametrize("policy", ["round_robin", "random", "lifo"])
    def test_correct_protocol_is_clean(self, policy):
        for seed in range(5):
            s = run_spec(CONTROL, seed=seed, policy=policy)
            assert s.ok, s.report()
            assert s.events > 0  # the sanitizer actually observed the run


class TestStaticDetection:
    def test_every_bug_is_flagged(self):
        findings = lint_file(CORPUS_PATH)
        by_function = {}
        for f in findings:
            by_function.setdefault(f.function, set()).add(f.rule)
        for spec in CORPUS:
            got = by_function.get(spec.kernel.__name__, set())
            assert set(spec.expected_lint) <= got, \
                f"{spec.name}: expected {spec.expected_lint}, got {got}"

    def test_control_kernel_is_clean(self):
        findings = lint_file(CORPUS_PATH)
        assert not [f for f in findings
                    if f.function == CONTROL.kernel.__name__]
