"""Table I closed forms and rendering."""

import pytest

from repro.analysis.complexity import (HIGH, LOW, MEDIUM, TABLE1_ORDER,
                                       render_table1, table1_row)
from repro.errors import ConfigurationError


class TestRows:
    def test_order_matches_paper(self):
        assert TABLE1_ORDER == ("2R2W", "2R2W-optimal", "2R1W", "1R1W",
                                "(1+r)R1W", "1R1W-SKSS", "1R1W-SKSS-LB")

    def test_parallelism_classes(self):
        classes = {name: table1_row(name, 1024).parallelism
                   for name in TABLE1_ORDER}
        assert classes["2R2W"] == LOW
        assert classes["2R2W-optimal"] == HIGH
        assert classes["2R1W"] == HIGH
        assert classes["1R1W"] == MEDIUM
        assert classes["(1+r)R1W"] == MEDIUM
        assert classes["1R1W-SKSS"] == MEDIUM
        assert classes["1R1W-SKSS-LB"] == HIGH

    def test_kernel_calls(self):
        n, W = 1024, 32
        t = n // W
        assert table1_row("2R2W", n).kernel_calls == 2
        assert table1_row("2R2W-optimal", n).kernel_calls == 2
        assert table1_row("2R1W", n, W=W).kernel_calls == 3
        assert table1_row("1R1W", n, W=W).kernel_calls == 2 * t - 1
        assert table1_row("1R1W-SKSS", n, W=W).kernel_calls == 1
        assert table1_row("1R1W-SKSS-LB", n, W=W).kernel_calls == 1

    def test_hybrid_kernels_shrink_with_r(self):
        k_small = table1_row("(1+r)R1W", 1024, r=0.04).kernel_calls
        k_large = table1_row("(1+r)R1W", 1024, r=0.81).kernel_calls
        assert k_large < k_small

    def test_thread_ordering_invariant(self):
        """n <= nW/m <= n²/m always (the paper's parallelism chain)."""
        for n, W in ((256, 32), (1024, 64), (4096, 128)):
            low = table1_row("2R2W", n, W=W).max_threads
            med = table1_row("1R1W-SKSS", n, W=W).max_threads
            high = table1_row("1R1W-SKSS-LB", n, W=W).max_threads
            assert low <= med <= high

    def test_read_leading_terms(self):
        n = 512
        n2 = n * n
        assert table1_row("2R2W", n).reads == 2 * n2
        assert table1_row("2R1W", n).reads == 2 * n2
        assert table1_row("1R1W", n).reads == n2
        assert table1_row("1R1W-SKSS-LB", n).reads == n2
        hybrid = table1_row("(1+r)R1W", n, r=0.25).reads
        assert n2 < hybrid < 2 * n2

    def test_misaligned_rejected(self):
        with pytest.raises(ConfigurationError):
            table1_row("1R1W", 100, W=32)

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ConfigurationError):
            table1_row("4R0W", 256)


class TestRendering:
    def test_symbolic_table_contains_all_rows(self):
        text = render_table1()
        for name in TABLE1_ORDER:
            assert name in text
        assert "2n/W - 1" in text
        assert "n^2 + O(n^2/W)" in text

    def test_numeric_annotations(self):
        text = render_table1(1024)
        assert "[2]" in text       # kernel calls
        assert "[1024]" in text    # 2R2W thread count


class TestSymbolicStrings:
    """The symbolic Table I entries, pinned row by row as the paper prints
    them (these strings are rendered verbatim in reports and docs)."""

    EXPECTED = {
        "2R2W": ("2", "n", "2n^2", "2n^2"),
        "2R2W-optimal": ("2", "n^2/m", "2n^2 + O(n^2)", "2n^2 + O(n^2)"),
        "2R1W": ("3", "n^2/m", "2n^2 + O(n^2/W)", "n^2 + O(n^2/W)"),
        "1R1W": ("2n/W - 1", "nW/m", "n^2 + O(n^2/W)", "n^2 + O(n^2/W)"),
        "(1+r)R1W": ("2(1-sqrt(r))n/W + 5", "max(rn^2/2m, nW/m)",
                     "(1+r)n^2 + O(n^2/W)", "n^2 + O(n^2/W)"),
        "1R1W-SKSS": ("1", "nW/m", "n^2 + O(n^2/W)", "n^2 + O(n^2/W)"),
        "1R1W-SKSS-LB": ("1", "n^2/m", "n^2 + O(n^2/W)", "n^2 + O(n^2/W)"),
    }

    @pytest.mark.parametrize("name", TABLE1_ORDER)
    def test_row_symbols(self, name):
        row = table1_row(name, 1024)
        calls, threads, reads, writes = self.EXPECTED[name]
        assert row.kernel_calls_sym == calls
        assert row.threads_sym == threads
        assert row.reads_sym == reads
        assert row.writes_sym == writes

    def test_every_row_covered(self):
        assert set(self.EXPECTED) == set(TABLE1_ORDER)

    def test_symbols_render_in_table(self):
        text = render_table1()
        for calls, threads, reads, writes in self.EXPECTED.values():
            for sym in (calls, threads, reads, writes):
                assert sym in text
