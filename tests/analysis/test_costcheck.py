"""Static cost verifier: symbolic proofs, cross-validation, overflow."""

import importlib
from fractions import Fraction

import pytest

from repro.analysis.complexity import TABLE1_ORDER
from repro.analysis.costcheck import (KERNELS, Poly, build_geometry,
                                      check_corpus, check_overflow,
                                      crossval_algorithm, device_max_n,
                                      dump_hint_keys, extract_sites,
                                      find_cost_bugs, kernel_totals,
                                      prove_table1, run_costcheck)
from repro.errors import CostModelError


class TestPoly:
    def test_variables_and_coefficients(self):
        t, W = Poly.var("t"), Poly.var("W")
        p = 2 * t * t * W * W + t * W - 3
        assert p.coeff(2, 2) == 2
        assert p.coeff(1, 1) == 1
        assert p.coeff(0, 0) == -3
        assert p.coeff(5, 5) == 0

    def test_arithmetic_is_exact_rational(self):
        t = Poly.var("t")
        p = (t * t) / 4 + t / 4
        assert p.coeff(2, 0) == Fraction(1, 4)
        assert (p + p).coeff(1, 0) == Fraction(1, 2)
        assert (p - p).terms == {}

    def test_floordiv_matches_truediv(self):
        """Geometry formulas use // where the division is known exact; in
        symbolic mode it must behave as exact rational division."""
        t = Poly.var("t")
        assert (t * t) // 2 == (t * t) / 2

    def test_equality_and_str(self):
        t, W = Poly.var("t"), Poly.var("W")
        assert t * W == W * t
        assert str(Poly.const(0)) == "0"
        assert "t^2*W^2" in str(2 * t * t * W * W)

    def test_unknown_variable_rejected(self):
        from repro.errors import ConfigurationError
        with pytest.raises(ConfigurationError):
            Poly.var("n")


class TestProveTable1:
    """All seven Table I rows are proven from the kernel ASTs."""

    LEADS = {  # (read lead, write lead) as prove_table1 stringifies them
        "2R2W": ("2", "2"),
        "2R2W-optimal": ("4145/2048", "2097/1024"),
        "2R1W": ("2", "1"),
        "1R1W": ("1", "1"),
        "(1+r)R1W": ("5/4", "1"),
        "1R1W-SKSS": ("1", "1"),
        "1R1W-SKSS-LB": ("1", "1"),
    }

    @pytest.mark.parametrize("name", TABLE1_ORDER)
    def test_row_proven(self, name):
        proof = prove_table1(name)
        assert proof["ok"], proof["problems"]
        assert (proof["read_lead"], proof["write_lead"]) == self.LEADS[name]

    def test_every_row_covered(self):
        assert set(self.LEADS) == set(TABLE1_ORDER)

    def test_exact_2r2w_polynomials(self):
        proof = prove_table1("2R2W")
        assert proof["reads"] == "2*t^2*W^2"
        assert proof["writes"] == "2*t^2*W^2"

    def test_hybrid_read_lead_is_one_plus_r(self):
        """The (1+r)R1W row at the default r = 1/4."""
        proof = prove_table1("(1+r)R1W")
        assert Fraction(proof["read_lead"]) == 1 + Fraction(1, 4)


class TestHintDrift:
    """Editing a kernel without updating COST_HINTS must fail loudly."""

    def _load(self, algorithm="2R2W"):
        spec = KERNELS[algorithm][0]
        module = importlib.import_module(spec.module)
        return getattr(module, spec.kernel), dict(module.COST_HINTS[spec.kernel])

    def test_missing_hint_pinpoints_the_site(self):
        fn, hints = self._load()
        g = build_geometry("2R2W", sym=True)
        key = next(iter(hints))
        del hints[key]
        with pytest.raises(CostModelError, match="no COST_HINTS"):
            kernel_totals(fn, hints, g, concrete=False)

    def test_stale_hint_rejected(self):
        fn, hints = self._load()
        g = build_geometry("2R2W", sym=True)
        hints["ctx.gload(nonexistent, 0)"] = {"count": 1}
        with pytest.raises(CostModelError, match="stale annotation"):
            kernel_totals(fn, hints, g, concrete=False)

    def test_unknown_hint_field_rejected(self):
        fn, hints = self._load()
        g = build_geometry("2R2W", sym=True)
        key = next(iter(hints))
        hints[key] = {**hints[key], "bogus_field": 1}
        with pytest.raises(CostModelError, match="unknown field"):
            kernel_totals(fn, hints, g, concrete=False)

    def test_every_registered_kernel_has_complete_hints(self):
        """The drift gate itself: each of the 13 kernels' sites all carry
        hints (this is what makes an un-annotated edit un-mergeable)."""
        for algorithm in TABLE1_ORDER:
            for spec in KERNELS[algorithm]:
                module = importlib.import_module(spec.module)
                fn = getattr(module, spec.kernel)
                keys = set(dump_hint_keys(fn))
                assert keys == set(module.COST_HINTS[spec.kernel]), spec.kernel


class TestCrossValidation:
    """Static transaction predictions vs gpusim counters (aligned shapes)."""

    @pytest.mark.parametrize("name", ("2R2W", "2R2W-optimal", "2R1W", "1R1W"))
    def test_exact_match(self, name):
        checks = crossval_algorithm(name, n=64)
        assert checks, name
        for check in checks:
            assert check["ok"], check["problems"]
            assert check["exact"]
            assert check["measured"]["read_tx"] == \
                check["predicted"]["read_tx_lo"]
            assert check["measured"]["write_tx"] == \
                check["predicted"]["write_tx"]

    def test_hybrid_with_empty_c_band(self):
        """At t = 2 the hybrid's C band is empty: its launches never happen
        and the combined prediction must still match the A-only traffic."""
        checks = crossval_algorithm("(1+r)R1W", n=64)
        assert all(c["ok"] for c in checks), \
            [c["problems"] for c in checks]
        local = next(c for c in checks
                     if c["kernel"] == "band_local_sums_kernel")
        assert "hybrid_C_local" in local["launches"]

    @pytest.mark.parametrize("name", ("1R1W-SKSS", "1R1W-SKSS-LB"))
    def test_lookback_algorithms_within_bounds(self, name):
        checks = crossval_algorithm(name, n=64)
        for check in checks:
            assert check["ok"], check["problems"]
            lo = check["predicted"]["reads_lo"]
            hi = check["predicted"]["reads_hi"]
            assert lo <= check["measured"]["reads"] <= hi


class TestOverflow:
    def test_small_ints_proven_safe(self):
        verdicts = {v["dtype"]: v for v in check_overflow()}
        for dtype in ("bool", "uint8", "int8", "uint16", "int16", "uint32",
                      "int32"):
            v = verdicts[dtype]
            assert v["ok"] and v["exact"]
            assert v["accumulator"] == "int64"
            assert v["site"] is None

    def test_int64_overflow_pinpointed(self):
        verdicts = {v["dtype"]: v for v in check_overflow()}
        for dtype in ("int64", "uint64"):
            v = verdicts[dtype]
            assert not v["ok"]
            assert v["site"]["file"] == "naive_2r2w.py"
            assert isinstance(v["site"]["line"], int)
            assert v["site"]["kernel"] == "column_scan_kernel"
            assert v["site"]["buffer"] == "dst"

    def test_floats_are_informational(self):
        verdicts = {v["dtype"]: v for v in check_overflow()}
        for dtype in ("float16", "float32", "float64"):
            v = verdicts[dtype]
            assert v["ok"] and not v["exact"]
            assert "exactness" in v["note"]

    def test_explicit_n_is_honored(self):
        verdicts = check_overflow(n=64)
        assert all(v["n"] == 64 for v in verdicts)
        # int64 input is already at the accumulator's limit, so even a tiny
        # matrix can overflow; every narrower int is provably safe at n=64.
        by_dtype = {v["dtype"]: v for v in verdicts}
        assert by_dtype["int32"]["ok"]
        assert not by_dtype["int64"]["ok"]

    def test_device_max_n(self):
        n = device_max_n()
        assert n * n * 2 * 8 <= 12 * 1024 ** 3  # two float64 buffers fit
        assert n > 1024


class TestCostBugDetectors:
    def test_corpus_bugs_rejected_with_locations(self):
        from repro.analysis.bugcorpus import COST_CORPUS
        for spec in COST_CORPUS:
            findings = find_cost_bugs(spec.kernel)
            kinds = {f["kind"] for f in findings}
            assert spec.expected_cost in kinds, spec.name
            for f in findings:
                assert f["file"] == "bugcorpus.py"
                assert f["line"] > 0
                assert f["kernel"] == spec.kernel.__name__

    def test_control_kernel_is_clean(self):
        from repro.analysis.bugcorpus import CONTROL
        assert find_cost_bugs(CONTROL.kernel) == []

    def test_duplicate_access_raises_excess_read(self):
        def kern(ctx, data, out):
            a = ctx.gload_scalar(data, 0)
            b = ctx.gload_scalar(data, 0)
            ctx.gstore_scalar(out, 0, a + b)
        with pytest.raises(CostModelError, match="excess-read"):
            extract_sites(kern)

    def test_repeated_bare_fences_are_one_site(self):
        """Legitimate repeated fences share one hint; the redundant-fence
        detector judges them separately."""
        def kern(ctx, data):
            ctx.gstore_scalar(data, 0, 1.0)
            ctx.threadfence()
            ctx.gstore_scalar(data, 1, 1.0)
            ctx.threadfence()
        sites = extract_sites(kern)
        assert sum(1 for s in sites if s.role == "fence") == 1

    def test_check_corpus_all_ok(self):
        results = check_corpus()
        assert results, "corpus must not be empty"
        assert all(r["ok"] for r in results), \
            [r for r in results if not r["ok"]]


class TestRunCostcheck:
    def test_static_only_payload(self):
        result = run_costcheck(crossval=False, corpus=True, overflow=True)
        assert result["ok"]
        assert len(result["algorithms"]) == len(TABLE1_ORDER)
        assert "overflow" in result and "corpus" in result

    def test_payload_is_json_serializable(self):
        import json
        result = run_costcheck(crossval=False)
        json.dumps(result)  # Fractions must have been stringified

    def test_single_algorithm_with_crossval(self):
        result = run_costcheck(["2R2W"], n=64, corpus=False, overflow=False)
        assert result["ok"]
        (entry,) = result["algorithms"]
        assert entry["algorithm"] == "2R2W"
        assert all(k["ok"] for k in entry["kernels"])

    def test_render_report_mentions_verdict(self):
        from repro.analysis.costcheck import render_report
        result = run_costcheck(crossval=False)
        text = render_report(result)
        assert "PASS" in text
        assert "planted-bug corpus" in text
        for name in TABLE1_ORDER:
            assert name in text
