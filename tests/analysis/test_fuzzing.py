"""Differential fuzzer: sampling, replay, clean runs."""

import numpy as np
import pytest

from repro.analysis.fuzzing import (FUZZ_ALGORITHMS, FuzzConfig, fuzz, run_one,
                                 sample_config)


class TestSampling:
    def test_configs_are_valid(self):
        rng = np.random.default_rng(0)
        for _ in range(30):
            cfg = sample_config(rng)
            assert cfg.algorithm in FUZZ_ALGORITHMS
            assert cfg.n % cfg.tile_width == 0
            assert cfg.policy in ("round_robin", "random", "lifo")
            assert cfg.consistency in ("relaxed", "strong")

    def test_deterministic_given_rng(self):
        a = [sample_config(np.random.default_rng(7)) for _ in range(3)]
        b = [sample_config(np.random.default_rng(7)) for _ in range(3)]
        assert a[0] == b[0]

    def test_config_replayable(self):
        cfg = FuzzConfig(algorithm="1R1W-SKSS-LB", n=64, tile_width=32,
                         policy="lifo", sim_seed=5, data_seed=9, residency=2,
                         consistency="relaxed", tiny_device=True)
        assert np.array_equal(cfg.build_matrix(), cfg.build_matrix())
        assert run_one(cfg) is None


class TestFuzzing:
    def test_short_session_clean(self):
        report = fuzz(12, seed=42)
        assert report.ok, report.failures
        assert report.runs == 12
        assert "OK" in report.summary()

    def test_time_budget_respected(self):
        report = fuzz(10_000, seed=1, time_budget_s=2.0)
        assert report.runs < 10_000
        assert report.elapsed_s < 10.0

    def test_detects_a_planted_bug(self, monkeypatch):
        """If an algorithm returned garbage, the fuzzer must notice."""
        import repro.analysis.fuzzing as fuzz_mod

        def broken_run_one(config, **kwargs):
            return "wrong SAT (planted)"
        monkeypatch.setattr(fuzz_mod, "run_one", broken_run_one)
        report = fuzz_mod.fuzz(3, seed=0)
        assert not report.ok
        assert len(report.failures) == 3
        assert "FAILURES" in report.summary()
