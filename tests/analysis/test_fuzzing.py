"""Differential fuzzer: sampling, replay, clean runs."""

import dataclasses
import json

import numpy as np
import pytest

from repro.analysis.fuzzing import (FUZZ_ALGORITHMS, INCREMENTAL_ALGORITHMS,
                                    INCREMENTAL_DTYPES, FuzzConfig, fuzz,
                                    run_one, sample_config,
                                    sample_distsat_config,
                                    sample_engine_config,
                                    sample_incremental_config)
from repro.errors import ConfigurationError


class TestSampling:
    def test_configs_are_valid(self):
        rng = np.random.default_rng(0)
        for _ in range(30):
            cfg = sample_config(rng)
            assert cfg.algorithm in FUZZ_ALGORITHMS
            assert cfg.n % cfg.tile_width == 0
            assert cfg.policy in ("round_robin", "random", "lifo")
            assert cfg.consistency in ("relaxed", "strong")

    def test_deterministic_given_rng(self):
        a = [sample_config(np.random.default_rng(7)) for _ in range(3)]
        b = [sample_config(np.random.default_rng(7)) for _ in range(3)]
        assert a[0] == b[0]

    def test_config_replayable(self):
        cfg = FuzzConfig(algorithm="1R1W-SKSS-LB", n=64, tile_width=32,
                         policy="lifo", sim_seed=5, data_seed=9, residency=2,
                         consistency="relaxed", tiny_device=True)
        assert np.array_equal(cfg.build_matrix(), cfg.build_matrix())
        assert run_one(cfg) is None


class TestFuzzing:
    def test_short_session_clean(self):
        report = fuzz(12, seed=42)
        assert report.ok, report.failures
        assert report.runs == 12
        assert "OK" in report.summary()

    @pytest.mark.slow
    def test_time_budget_respected(self):
        report = fuzz(10_000, seed=1, time_budget_s=2.0)
        assert report.runs < 10_000
        assert report.elapsed_s < 10.0

    def test_detects_a_planted_bug(self, monkeypatch):
        """If an algorithm returned garbage, the fuzzer must notice."""
        import repro.analysis.fuzzing as fuzz_mod

        def broken_run_one(config, **kwargs):
            return "wrong SAT (planted)"
        monkeypatch.setattr(fuzz_mod, "run_one", broken_run_one)
        report = fuzz_mod.fuzz(3, seed=0)
        assert not report.ok
        assert len(report.failures) == 3
        assert "FAILURES" in report.summary()


class TestIncrementalMode:
    def test_sampled_configs_are_valid(self):
        rng = np.random.default_rng(0)
        saw_float = saw_int = False
        for _ in range(30):
            cfg = sample_incremental_config(rng)
            assert cfg.mode == "incremental"
            assert cfg.algorithm in INCREMENTAL_ALGORITHMS
            assert cfg.dtype in INCREMENTAL_DTYPES
            assert cfg.rows >= cfg.tile_width and cfg.cols >= cfg.tile_width
            assert cfg.edits >= 1
            if np.issubdtype(np.dtype(cfg.dtype), np.integer):
                saw_int = True
            else:
                saw_float = True
                assert cfg.strategy in ("auto", "recompute")
        assert saw_int and saw_float

    def test_short_session_clean(self):
        report = fuzz(10, seed=3, mode="incremental")
        assert report.ok, report.failures
        assert report.runs == 10

    def test_replay_round_trip(self):
        cfg = sample_incremental_config(np.random.default_rng(5))
        again = FuzzConfig.from_json(cfg.to_json())
        assert again == cfg
        assert run_one(again) is None

    def test_legacy_json_without_new_fields_still_loads(self):
        """Pre-incremental replay files must keep working (defaults)."""
        cfg = FuzzConfig(algorithm="1R1W", n=64, tile_width=32, policy="lifo",
                         sim_seed=5, data_seed=9, residency=2,
                         consistency="relaxed", tiny_device=True)
        legacy = {k: v for k, v in dataclasses.asdict(cfg).items()
                  if k in ("algorithm", "n", "tile_width", "policy",
                           "sim_seed", "data_seed", "residency",
                           "consistency", "tiny_device", "r")}
        loaded = FuzzConfig.from_json(json.dumps(legacy))
        assert loaded.mode == "simulate"
        assert loaded == cfg

    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            fuzz(1, mode="nope")
        cfg = dataclasses.replace(
            sample_incremental_config(np.random.default_rng(1)), mode="bogus")
        assert "unknown fuzz mode" in run_one(cfg)

    def test_detects_a_planted_repair_bug(self, monkeypatch):
        """If repair left the table stale, the edit-sequence check fires."""
        from repro.hostexec.incremental import IncrementalSAT

        real = IncrementalSAT.update

        def broken(self, top, left, values):
            result = real(self, top, left, values)
            state = self._required_state()
            state.out[0, 0] += 1  # corrupt the committed table
            return result
        monkeypatch.setattr(IncrementalSAT, "update", broken)
        rng = np.random.default_rng(0)
        failed = False
        for _ in range(20):
            cfg = sample_incremental_config(rng)
            if run_one(cfg) is not None:
                failed = True
                break
        assert failed

    @pytest.mark.slow
    def test_long_session_clean(self):
        report = fuzz(150, seed=2018, mode="incremental")
        assert report.ok, report.failures


class TestSanitizeMode:
    """mode="sanitize": the replay harness for modelcheck counterexamples."""

    def test_clean_config_passes(self):
        cfg = FuzzConfig(algorithm="1R1W-SKSS-LB", n=64, tile_width=32,
                         policy="round_robin", sim_seed=0, data_seed=0,
                         residency=2, consistency="relaxed", tiny_device=False,
                         mode="sanitize", spin_bound=20_000)
        assert run_one(cfg) is None

    def test_swapped_acquisition_deadlocks_at_residency_one(self):
        """The modelcheck counterexample replay: pool-1 deadlock."""
        cfg = FuzzConfig(algorithm="1R1W-SKSS-LB", n=64, tile_width=32,
                         policy="round_robin", sim_seed=0, data_seed=0,
                         residency=1, consistency="relaxed", tiny_device=False,
                         mode="sanitize", acquisition="swapped",
                         spin_bound=20_000)
        error = run_one(cfg)
        assert error is not None and "Deadlock" in error

    def test_corpus_kernel_replay_finds_the_bug(self):
        cfg = FuzzConfig(algorithm="corpus", kernel="dropped-fence", n=32,
                         tile_width=32, policy="random", sim_seed=0,
                         data_seed=0, residency=2, consistency="relaxed",
                         tiny_device=True, mode="sanitize", spin_bound=20_000)
        error = run_one(cfg)
        assert error is not None and "dropped-fence" in error

    def test_corpus_control_is_clean(self):
        cfg = FuzzConfig(algorithm="corpus", kernel="correct", n=32,
                         tile_width=32, policy="random", sim_seed=0,
                         data_seed=0, residency=2, consistency="relaxed",
                         tiny_device=True, mode="sanitize", spin_bound=20_000)
        assert run_one(cfg) is None

    def test_round_trip_preserves_new_fields(self):
        cfg = FuzzConfig(algorithm="1R1W-SKSS-LB", n=64, tile_width=32,
                         policy="lifo", sim_seed=1, data_seed=2, residency=1,
                         consistency="relaxed", tiny_device=False,
                         mode="sanitize", acquisition="swapped",
                         spin_bound=12_345)
        again = FuzzConfig.from_json(cfg.to_json())
        assert again == cfg

    def test_legacy_json_defaults_are_inert(self):
        loaded = FuzzConfig.from_json(json.dumps(
            {"algorithm": "1R1W", "n": 64, "tile_width": 32,
             "policy": "lifo", "sim_seed": 5, "data_seed": 9,
             "residency": 2, "consistency": "relaxed", "tiny_device": True}))
        assert loaded.kernel is None
        assert loaded.acquisition == "diagonal"
        assert loaded.spin_bound is None

    def test_short_sanitize_session_clean(self):
        report = fuzz(3, seed=11, mode="sanitize")
        assert report.ok, report.failures
        assert report.runs == 3


class TestCostMode:
    """mode="cost": replay the planted traffic-regression corpus."""

    def test_sampled_configs_are_valid(self):
        from repro.analysis.bugcorpus import CONTROL, COST_CORPUS
        from repro.analysis.fuzzing import sample_cost_config
        names = {s.name for s in COST_CORPUS} | {CONTROL.name}
        rng = np.random.default_rng(0)
        seen = set()
        for _ in range(30):
            cfg = sample_cost_config(rng)
            assert cfg.mode == "cost"
            assert cfg.kernel in names
            seen.add(cfg.kernel)
        assert seen == names  # every corpus entry gets sampled

    def test_short_session_clean(self):
        report = fuzz(8, seed=5, mode="cost")
        assert report.ok, report.failures
        assert report.runs == 8

    def test_replay_round_trip(self):
        from repro.analysis.fuzzing import sample_cost_config
        cfg = sample_cost_config(np.random.default_rng(4))
        again = FuzzConfig.from_json(cfg.to_json())
        assert again == cfg
        assert run_one(again) is None

    def test_detects_a_broken_checker(self, monkeypatch):
        """If find_cost_bugs went blind, replaying the corpus must fail."""
        import repro.analysis.costcheck as costcheck
        monkeypatch.setattr(costcheck, "find_cost_bugs", lambda fn: [])
        cfg = FuzzConfig(algorithm="1R1W-SKSS-LB", n=32, tile_width=32,
                         policy="round_robin", sim_seed=0, data_seed=0,
                         residency=None, consistency="relaxed",
                         tiny_device=False, mode="cost",
                         kernel="store-in-spin")
        error = run_one(cfg)
        assert error is not None and "store-in-spin" in error

    def test_flagging_the_control_is_a_failure(self, monkeypatch):
        import repro.analysis.costcheck as costcheck
        monkeypatch.setattr(
            costcheck, "find_cost_bugs",
            lambda fn: [{"kind": "excess-read", "kernel": fn.__name__,
                         "file": "x.py", "line": 1, "detail": "bogus"}])
        cfg = FuzzConfig(algorithm="1R1W-SKSS-LB", n=32, tile_width=32,
                         policy="round_robin", sim_seed=0, data_seed=0,
                         residency=None, consistency="relaxed",
                         tiny_device=False, mode="cost", kernel="correct")
        error = run_one(cfg)
        assert error is not None and "clean" in error


class TestEngineMode:
    """mode="engine": registered backends differenced vs the serial oracle."""

    def test_sampled_configs_are_valid(self):
        from repro.backend.registry import get_spec, known_backends
        rng = np.random.default_rng(0)
        seen = set()
        for _ in range(60):
            cfg = sample_engine_config(rng)
            assert cfg.mode == "engine"
            assert cfg.engine in known_backends() and cfg.engine != "serial"
            assert cfg.dtype in INCREMENTAL_DTYPES
            assert cfg.rows >= cfg.tile_width and cfg.cols >= cfg.tile_width
            spec = get_spec(cfg.engine)
            if spec.algorithms is not None:
                assert cfg.algorithm in spec.algorithms
            else:
                assert cfg.algorithm in FUZZ_ALGORITHMS
            if spec.kind == "device":
                # Simulator collectives need warp-aligned tiles; shapes stay
                # small because the simulator pays per instruction.
                assert cfg.tile_width == 32
                assert cfg.rows <= 2 * cfg.tile_width
            if spec.kind == "streaming":
                assert cfg.band_rows is not None
                assert 1 <= cfg.band_rows <= cfg.rows
            else:
                assert cfg.band_rows is None
            seen.add(cfg.engine)
        assert seen == set(known_backends()) - {"serial"}
        assert {"gpusim", "outofcore"} <= seen

    def test_short_session_clean(self):
        import warnings
        with warnings.catch_warnings():
            # compiled degrades to wavefront without numba — still must pass
            warnings.simplefilter("ignore", RuntimeWarning)
            report = fuzz(15, seed=6, mode="engine")
        assert report.ok, report.failures
        assert report.runs == 15

    def test_replay_round_trip(self):
        import warnings
        cfg = sample_engine_config(np.random.default_rng(8))
        again = FuzzConfig.from_json(cfg.to_json())
        assert again == cfg
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            assert run_one(again) is None

    def test_legacy_json_defaults_to_wavefront(self):
        loaded = FuzzConfig.from_json(json.dumps(
            {"algorithm": "1R1W", "n": 64, "tile_width": 32,
             "policy": "lifo", "sim_seed": 5, "data_seed": 9,
             "residency": 2, "consistency": "relaxed", "tiny_device": True}))
        assert loaded.engine == "wavefront"

    def test_detects_a_planted_engine_bug(self, monkeypatch):
        """If a backend returned a wrong table, the differencer must fire."""
        import warnings

        from repro.backend.core import Backend

        real = Backend.execute

        def broken(self, plan, a, out=None):
            res = real(self, plan, a, out)
            res[0, 0] += 1
            return res
        # Every backend routes through Backend.execute; the serial oracle in
        # _run_engine does not (run_host / plain cumsum), so only the
        # backend-side result is corrupted.
        monkeypatch.setattr(Backend, "execute", broken)
        rng = np.random.default_rng(0)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            errors = [run_one(sample_engine_config(rng)) for _ in range(5)]
        assert any(e is not None and "diverged" in e for e in errors)

    @pytest.mark.slow
    def test_long_session_clean(self):
        import warnings
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            report = fuzz(100, seed=2018, mode="engine")
        assert report.ok, report.failures


class TestDistsatMode:
    """mode="distsat": the sharded executor under random fault plans."""

    def test_sampled_configs_are_valid(self):
        from repro.distsat import FaultPlan
        rng = np.random.default_rng(0)
        saw_fault = saw_clean = saw_chunk = False
        for _ in range(60):
            cfg = sample_distsat_config(rng)
            assert cfg.mode == "distsat"
            assert cfg.algorithm in FUZZ_ALGORITHMS
            assert cfg.dtype in INCREMENTAL_DTYPES
            assert 1 <= cfg.shards <= 5
            assert cfg.rows >= cfg.tile_width and cfg.cols >= cfg.tile_width
            if cfg.band_rows is not None:
                saw_chunk = True
                assert 1 <= cfg.band_rows <= cfg.rows
            if cfg.fault is None:
                saw_clean = True
            else:
                saw_fault = True
                plan = FaultPlan.from_dict(cfg.fault)
                for action in plan.actions:
                    assert action.shard < cfg.shards
                    # sampled plans stay within _run_distsat's retry budget
                    assert plan.expected_attempts(action.shard,
                                                  action.phase) <= 4
        assert saw_fault and saw_clean and saw_chunk

    def test_short_session_clean(self):
        report = fuzz(20, seed=3, mode="distsat")
        assert report.ok, report.failures
        assert report.runs == 20

    def test_replay_round_trip(self):
        cfg = sample_distsat_config(np.random.default_rng(4))
        again = FuzzConfig.from_json(cfg.to_json())
        assert again == cfg
        assert run_one(again) is None

    def test_legacy_json_has_no_shards_or_fault(self):
        loaded = FuzzConfig.from_json(json.dumps(
            {"algorithm": "1R1W", "n": 64, "tile_width": 32,
             "policy": "lifo", "sim_seed": 5, "data_seed": 9,
             "residency": 2, "consistency": "relaxed", "tiny_device": True}))
        assert loaded.shards is None and loaded.fault is None

    def test_detects_a_planted_stale_carry_bug(self, monkeypatch):
        """The canonical distributed-systems bug: recovery resumes from a
        stale carry instead of the persisted one.  A config whose fault
        plan kills an apply attempt forces the recovery seam
        (CheckpointStore.load_carry_before); with that seam returning a
        stale vector the stitched rows are wrong, and the differential
        check must say so."""
        from repro.distsat import FaultAction, FaultPlan
        from repro.distsat.checkpoint import CheckpointStore

        real = CheckpointStore.load_carry_before

        def stale(self, shard):
            carry = real(self, shard)
            return carry // 2        # a carry from "an earlier frame"
        monkeypatch.setattr(CheckpointStore, "load_carry_before", stale)
        plan = FaultPlan(actions=(
            FaultAction(kind="kill", shard=1, attempt=1, phase="apply"),))
        cfg = FuzzConfig(
            algorithm="1R1W-SKSS-LB", n=48, tile_width=16,
            policy="round_robin", sim_seed=1, data_seed=2, residency=None,
            consistency="strong", tiny_device=False, mode="distsat",
            dtype="int32", rows=48, cols=33, shards=3, fault=plan.to_dict())
        error = run_one(cfg)
        assert error is not None and "diverged" in error

    def test_detects_bookkeeping_drift(self, monkeypatch):
        """A retry the fault plan did not predict must fail the attempt
        ledger check even though the output is still correct."""
        import repro.distsat.coordinator as coordinator

        real = coordinator.CheckpointStore.record_attempt

        def double_counting(self, phase, shard):
            n = real(self, phase, shard)
            if phase == "apply" and shard == 0:
                n = real(self, phase, shard)
            return n
        monkeypatch.setattr(coordinator.CheckpointStore, "record_attempt",
                            double_counting)
        cfg = FuzzConfig(
            algorithm="1R1W", n=32, tile_width=16, policy="round_robin",
            sim_seed=1, data_seed=2, residency=None, consistency="strong",
            tiny_device=False, mode="distsat", dtype="int32",
            rows=32, cols=20, shards=2)
        error = run_one(cfg)
        assert error is not None and "bookkeeping drift" in error

    @pytest.mark.slow
    def test_long_session_clean(self):
        report = fuzz(120, seed=2018, mode="distsat")
        assert report.ok, report.failures


class TestNumericMode:
    """mode="numeric": rounding-bug corpus replay + error-bound spot checks."""

    def test_sampled_configs_are_valid(self):
        from repro.analysis.bugcorpus import CONTROL, NUMERIC_CORPUS
        from repro.analysis.fuzzing import sample_numeric_config
        names = {s.name for s in NUMERIC_CORPUS} | {CONTROL.name}
        rng = np.random.default_rng(0)
        seen_kernels, seen_spots = set(), set()
        for _ in range(60):
            cfg = sample_numeric_config(rng)
            assert cfg.mode == "numeric"
            if cfg.kernel is not None:
                assert cfg.kernel in names
                seen_kernels.add(cfg.kernel)
            else:
                assert cfg.algorithm in FUZZ_ALGORITHMS
                assert cfg.dtype in ("float32", "float64")
                seen_spots.add((cfg.algorithm, cfg.n, cfg.dtype))
        assert seen_kernels == names
        assert seen_spots

    def test_short_session_clean(self):
        report = fuzz(6, seed=11, mode="numeric")
        assert report.ok, report.failures
        assert report.runs == 6

    def test_replay_round_trip(self):
        from repro.analysis.fuzzing import sample_numeric_config
        cfg = sample_numeric_config(np.random.default_rng(4))
        again = FuzzConfig.from_json(cfg.to_json())
        assert again == cfg
        assert run_one(again) is None

    def test_spot_check_validates_a_bound(self):
        cfg = FuzzConfig(algorithm="1R1W-SKSS-LB", n=64, tile_width=32,
                         policy="round_robin", sim_seed=0, data_seed=0,
                         residency=None, consistency="relaxed",
                         tiny_device=False, mode="numeric",
                         dtype="float32", kernel=None)
        assert run_one(cfg) is None

    def test_detects_a_blind_detector(self, monkeypatch):
        """If find_numeric_bugs went blind, replaying the corpus must fail."""
        import repro.analysis.numcheck as numcheck
        monkeypatch.setattr(numcheck, "find_numeric_bugs", lambda fn: [])
        cfg = FuzzConfig(algorithm="1R1W-SKSS-LB", n=32, tile_width=32,
                         policy="round_robin", sim_seed=0, data_seed=0,
                         residency=None, consistency="relaxed",
                         tiny_device=False, mode="numeric",
                         dtype="float64", kernel="rounding-roundtrip")
        error = run_one(cfg)
        assert error is not None and "rounding-roundtrip" in error

    def test_flagging_the_control_is_a_failure(self, monkeypatch):
        import repro.analysis.numcheck as numcheck
        monkeypatch.setattr(
            numcheck, "find_numeric_bugs",
            lambda fn: [{"kind": "rounding-roundtrip", "kernel": fn.__name__,
                         "file": "x.py", "line": 1, "detail": "bogus"}])
        cfg = FuzzConfig(algorithm="1R1W-SKSS-LB", n=32, tile_width=32,
                         policy="round_robin", sim_seed=0, data_seed=0,
                         residency=None, consistency="relaxed",
                         tiny_device=False, mode="numeric",
                         dtype="float64", kernel="correct")
        error = run_one(cfg)
        assert error is not None and "clean" in error
