"""Static kernel lint: rule triggers, exemptions, and a clean real tree."""

import textwrap
from pathlib import Path

from repro.analysis import default_targets, lint_paths, lint_source
from repro.analysis.kernellint import RULES


def _lint(snippet: str, path: str = "<test>"):
    return lint_source(textwrap.dedent(snippet), path)


def _rules(findings):
    return {f.rule for f in findings}


class TestRealTreeIsClean:
    def test_default_targets_pin(self):
        """The lint sweep covers every kernel-bearing location; extending
        the set is deliberate (this pin makes silent shrinkage fail)."""
        targets = default_targets()
        assert [t.name for t in targets] == [
            "primitives", "sat", "kernels.py", "incremental.py",
            "kernel.py"]
        assert targets[2].parent.name == "hostexec"
        assert targets[3].parent.name == "hostexec"
        assert targets[4].parent.name == "gpusim"
        assert all(t.exists() for t in targets)

    def test_no_findings_in_kernel_sources(self):
        findings = lint_paths()
        assert findings == [], "\n".join(str(f) for f in findings)


class TestKL001FenceBeforeFlag:
    def test_unfenced_data_store_before_flag(self):
        findings = _lint("""
            def kern(ctx, data, status_buf):
                ctx.gstore_scalar(data, 0, 1.0)
                ctx.gstore_scalar(status_buf, 0, 1)
        """)
        assert "KL001" in _rules(findings)

    def test_fence_resets_the_count(self):
        findings = _lint("""
            def kern(ctx, data, status_buf):
                ctx.gstore_scalar(data, 0, 1.0)
                ctx.threadfence()
                ctx.gstore_scalar(status_buf, 0, 1)
        """)
        assert "KL001" not in _rules(findings)

    def test_publish_helper_counts_as_fenced(self):
        findings = _lint("""
            def kern(ctx, data, status_buf):
                ctx.gstore_scalar(data, 0, 1.0)
                publish(ctx, [], status_buf, 0, 1)
        """)
        assert "KL001" not in _rules(findings)

    def test_scratch_attribute_statuses_are_recognized(self):
        findings = _lint("""
            def kern(ctx, sb):
                ctx.gstore(sb.lrs, idx, vals)
                ctx.gstore_scalar(sb.R, 0, 2)
        """)
        assert "KL001" in _rules(findings)


class TestKL002AtomicOnlyCounters:
    def test_plain_store_to_counter(self):
        findings = _lint("""
            def kern(ctx, counter):
                ctx.gstore_scalar(counter, 0, 1)
        """)
        assert "KL002" in _rules(findings)

    def test_plain_load_of_counter(self):
        findings = _lint("""
            def kern(ctx, tile_counter):
                serial = ctx.gload_scalar(tile_counter, 0)
        """)
        assert "KL002" in _rules(findings)

    def test_atomic_access_is_fine(self):
        findings = _lint("""
            def kern(ctx, counter):
                serial = ctx.atomic_add(counter, 0, 1)
        """)
        assert findings == []


class TestKL003PublishOnlyStatusStores:
    def test_direct_status_store_flagged(self):
        findings = _lint("""
            def kern(ctx, status):
                ctx.threadfence()
                ctx.gstore_scalar(status, 0, 1)
        """)
        assert "KL003" in _rules(findings)

    def test_lookback_module_is_exempt(self):
        findings = _lint("""
            def publish(ctx, stores, status_buf, status_index, status_value):
                ctx.threadfence()
                ctx.gstore_scalar(status_buf, status_index, status_value)
        """, path="src/repro/primitives/lookback.py")
        assert "KL003" not in _rules(findings)

    def test_publish_call_is_not_a_direct_store(self):
        findings = _lint("""
            def kern(ctx, data, status):
                publish(ctx, [(data, idx, vals)], status, 0, 1)
        """)
        assert findings == []


class TestKL004YieldedSpinWaits:
    def test_unyielded_wait_until(self):
        findings = _lint("""
            def kern(ctx, status):
                ctx.wait_until(status, 0, lambda v: v >= 1)
        """)
        assert "KL004" in _rules(findings)

    def test_yield_from_is_fine(self):
        findings = _lint("""
            def kern(ctx, status):
                value = yield from ctx.wait_until(status, 0, lambda v: v >= 1)
        """)
        assert findings == []

    def test_assigned_but_not_yielded(self):
        findings = _lint("""
            def kern(ctx, status):
                gen = ctx.wait_until(status, 0, lambda v: v >= 1)
        """)
        assert "KL004" in _rules(findings)


class TestKL005BoundedSpinLoops:
    def test_hand_rolled_spin_loop(self):
        findings = _lint("""
            def kern(ctx, status):
                while ctx.gload_scalar(status, 0) < 1:
                    pass
        """)
        assert "KL005" in _rules(findings)

    def test_spin_in_loop_body(self):
        findings = _lint("""
            def kern(ctx, status):
                while True:
                    v = ctx.gload_scalar(status, 0)
                    if v >= 1:
                        break
        """)
        assert "KL005" in _rules(findings)

    def test_wait_until_loop_is_fine(self):
        findings = _lint("""
            def kern(ctx, status):
                while not done:
                    value = yield from ctx.wait_until(
                        status, 0, lambda v: v >= 1)
                    done = value >= 1
        """)
        assert "KL005" not in _rules(findings)

    def test_ticket_acquisition_loop_is_exempt(self):
        findings = _lint("""
            def kern(ctx, counter, status_R):
                while True:
                    serial = ctx.atomic_add(counter, 0, 1)
                    if serial >= total:
                        return
                    peek = ctx.gload_scalar(status_R, serial)
        """)
        assert "KL005" not in _rules(findings)

    def test_loop_without_status_polls_is_fine(self):
        findings = _lint("""
            def kern(ctx, data):
                while i < 4:
                    x = ctx.gload_scalar(data, i)
                    i = i + 1
        """)
        assert "KL005" not in _rules(findings)


class TestKL006RedundantTraffic:
    def test_store_in_spin_loop_flagged(self):
        findings = _lint("""
            def kern(ctx, data, status, out):
                while ctx.gload_scalar(status, 0) < 1:
                    ctx.gstore_scalar(out, 1, 1.0)
        """)
        assert "KL006" in _rules(findings)

    def test_back_to_back_fences_flagged(self):
        findings = _lint("""
            def kern(ctx, data):
                ctx.gstore_scalar(data, 0, 1.0)
                ctx.threadfence()
                ctx.threadfence()
        """)
        kl006 = [f for f in findings if f.rule == "KL006"]
        assert len(kl006) == 1
        assert "no global store" in kl006[0].message

    def test_first_fence_is_never_flagged(self):
        findings = _lint("""
            def kern(ctx, data):
                ctx.threadfence()
        """)
        assert "KL006" not in _rules(findings)

    def test_fenced_stores_are_fine(self):
        findings = _lint("""
            def kern(ctx, data):
                ctx.gstore_scalar(data, 0, 1.0)
                ctx.threadfence()
                ctx.gstore_scalar(data, 1, 2.0)
                ctx.threadfence()
        """)
        assert "KL006" not in _rules(findings)

    def test_publish_counts_as_a_store(self):
        """publish's flag store follows its internal fence, so a fence after
        a publish has something to commit."""
        findings = _lint("""
            def kern(ctx, data, status_buf):
                ctx.gstore_scalar(data, 0, 1.0)
                ctx.threadfence()
                publish(ctx, [], status_buf, 0, 1)
                ctx.threadfence()
        """)
        assert "KL006" not in _rules(findings)

    def test_wait_until_loops_are_not_spins(self):
        findings = _lint("""
            def kern(ctx, data, status):
                while not done:
                    value = yield from ctx.wait_until(
                        status, 0, lambda v: v >= 1)
                    ctx.gstore_scalar(data, 0, value)
                    done = value >= 1
        """)
        assert "KL006" not in _rules(findings)

    def test_ticket_loops_may_store(self):
        findings = _lint("""
            def kern(ctx, counter_free, data):
                while True:
                    serial = ctx.atomic_add(counter_free, 0, 1)
                    if serial >= total:
                        return
                    ctx.gstore_scalar(data, serial, 1.0)
        """)
        assert "KL006" not in _rules(findings)

    def test_cost_corpus_entries_flagged(self):
        """The planted traffic bugs with a KL006-shaped defect are caught by
        the lint as well as by costcheck (the corpus's acceptance pin)."""
        import repro.analysis.bugcorpus as bugcorpus
        from repro.analysis import lint_file
        findings = lint_file(bugcorpus.__file__)
        by_function = {}
        for f in findings:
            by_function.setdefault(f.function, set()).add(f.rule)
        from repro.analysis.bugcorpus import COST_CORPUS
        for spec in COST_CORPUS:
            got = by_function.get(spec.kernel.__name__, set())
            assert set(spec.expected_lint) <= got, spec.name


class TestKL007RoundtripUpdates:
    def test_augassign_shape_flagged(self):
        findings = _lint("""
            def kern(ctx, data):
                work = ctx.gload_scalar(data, 0)
                new = work + ctx.gload_scalar(data, 1)
                work += new - work
        """)
        assert "KL007" in _rules(findings)

    def test_plain_assign_shape_flagged(self):
        findings = _lint("""
            def kern(ctx, data):
                acc = ctx.gload_scalar(data, 0)
                acc = acc + (fresh - acc)
        """)
        assert "KL007" in _rules(findings)

    def test_subscripted_accumulator_flagged(self):
        findings = _lint("""
            def kern(ctx, data):
                tile[0, 0] += new - tile[0, 0]
        """)
        assert "KL007" in _rules(findings)

    def test_kahan_compensation_is_clean(self):
        """Kahan's ``comp = (t - total) - y`` subtracts *from* the target
        but never folds the target back through a ``+=``-style roundtrip."""
        findings = _lint("""
            def kern(ctx, data):
                y = ctx.gload_scalar(data, 0) - comp
                t = total + y
                comp = (t - total) - y
                total = t
        """)
        assert "KL007" not in _rules(findings)

    def test_direct_accumulation_is_clean(self):
        findings = _lint("""
            def kern(ctx, data):
                acc = acc + ctx.gload_scalar(data, 0)
                acc += ctx.gload_scalar(data, 1)
        """)
        assert "KL007" not in _rules(findings)

    def test_numeric_corpus_entries_flagged(self):
        """The planted rounding bugs carry their expected KL007 hit (the
        same acceptance pin shape as the cost corpus above)."""
        import repro.analysis.bugcorpus as bugcorpus
        from repro.analysis import lint_file
        from repro.analysis.bugcorpus import NUMERIC_CORPUS
        findings = lint_file(bugcorpus.__file__)
        by_function = {}
        for f in findings:
            by_function.setdefault(f.function, set()).add(f.rule)
        for spec in NUMERIC_CORPUS:
            got = by_function.get(spec.kernel.__name__, set())
            assert set(spec.expected_lint) <= got, spec.name


class TestLintPlumbing:
    def test_every_rule_has_a_description(self):
        assert set(RULES) == {"KL001", "KL002", "KL003", "KL004", "KL005",
                              "KL006", "KL007"}

    def test_findings_are_ordered_and_printable(self):
        findings = _lint("""
            def kern(ctx, data, status, counter):
                ctx.gstore_scalar(counter, 0, 1)
                ctx.gstore_scalar(data, 0, 1.0)
                ctx.gstore_scalar(status, 0, 1)
        """)
        lines = [f.line for f in findings]
        assert lines == sorted(lines)
        for f in findings:
            assert f.rule in str(f) and "kern" in str(f)

    def test_nested_functions_lint_independently(self):
        findings = _lint("""
            def outer(ctx, data, status):
                ctx.gstore_scalar(data, 0, 1.0)
                def inner(ctx2):
                    ctx2.gstore_scalar(status, 0, 1)
        """)
        # The inner function has no unfenced data stores of its own, so only
        # the direct-status-store rule fires, not the fence rule.
        assert "KL003" in _rules(findings)
        assert "KL001" not in _rules(findings)

    def test_lint_paths_accepts_explicit_files(self, tmp_path):
        bad = tmp_path / "k.py"
        bad.write_text("def k(ctx, counter):\n"
                       "    ctx.gstore_scalar(counter, 0, 1)\n")
        findings = lint_paths([bad])
        assert _rules(findings) == {"KL002"}
        assert findings[0].path == str(bad)
        assert Path(findings[0].path).exists()
