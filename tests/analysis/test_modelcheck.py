"""Exhaustive model checking: clean proofs, planted bugs, replayable traces.

The headline property is *universality*: every block interleaving of every
algorithm's protocol is explored, so "deadlock-free" is proved, not sampled.
The ``swapped`` acquisition order is the witness that this matters — it
survives every random schedule at full residency but the checker finds its
single-resident deadlock immediately.
"""

import json

import numpy as np
import pytest

from repro.analysis.bugcorpus import CONTROL, CORPUS
from repro.analysis.fuzzing import FuzzConfig, run_one
from repro.analysis.modelcheck import (VIOLATION_KINDS, check,
                                       check_algorithm, check_corpus,
                                       check_model)
from repro.analysis.protomodel import MODEL_ALGORITHMS, build_model
from repro.errors import ModelCheckError


class TestCleanVerification:
    @pytest.mark.parametrize("name", MODEL_ALGORITHMS)
    def test_verified_at_t2(self, name):
        result = check_algorithm(name, 2)
        assert result.ok, result.report()
        assert result.states > 0
        for launch in result.launches:
            assert launch.pools  # the sweep actually ran

    def test_pool_sweep_covers_1_through_4(self):
        result = check_algorithm("1R1W-SKSS-LB", 2)
        (launch,) = result.launches
        assert [p.pool for p in launch.pools] == [1, 2, 3, 4]

    def test_skss_lb_state_count_pinned(self):
        """The reduced t=2 state space; a change here means the model or the
        reduction changed — intentional changes update the pin."""
        result = check_algorithm("1R1W-SKSS-LB", 2)
        assert result.states == 2947
        assert result.transitions == 8962

    def test_skss_at_t3(self):
        result = check_algorithm("1R1W-SKSS", 3)
        assert result.ok, result.report()

    @pytest.mark.slow
    def test_skss_lb_at_t3(self):
        result = check_algorithm("1R1W-SKSS-LB", 3)
        assert result.ok, result.report()
        assert result.states > 50_000

    def test_max_states_budget_enforced(self):
        with pytest.raises(ModelCheckError, match="state"):
            check_algorithm("1R1W-SKSS-LB", 2, max_states=100)


class TestAcquisitionOrders:
    def test_rowmajor_also_verified(self):
        assert check_algorithm("1R1W-SKSS-LB", 2,
                               acquisition="rowmajor").ok

    def test_reversed_deadlocks_below_full_residency(self):
        result = check_algorithm("1R1W-SKSS-LB", 2, acquisition="reversed")
        (launch,) = result.launches
        by_pool = {p.pool: p for p in launch.pools}
        for pool in (1, 2, 3):
            kinds = {v.kind for v in by_pool[pool].violations}
            assert "deadlock" in kinds, f"pool {pool} should deadlock"
        assert by_pool[4].ok  # full residency: every block resident

    def test_swapped_deadlocks_only_at_pool_one(self):
        """The planted bug exhaustive search exists for: invisible to any
        sampled schedule with >= 2 resident blocks."""
        result = check_algorithm("1R1W-SKSS-LB", 2, acquisition="swapped")
        (launch,) = result.launches
        by_pool = {p.pool: p for p in launch.pools}
        assert not by_pool[1].ok
        assert {v.kind for v in by_pool[1].violations} == {"deadlock"}
        for pool in (2, 3, 4):
            assert by_pool[pool].ok, f"pool {pool} must be clean"

    def test_swapped_counterexample_has_a_trace_and_replay(self):
        result = check_algorithm("1R1W-SKSS-LB", 2, acquisition="swapped")
        (violation,) = result.violations()
        assert violation.trace  # shortest path, human-readable steps
        assert any("dispatch" in step for step in violation.trace)
        assert violation.replay["residency"] == 1
        assert violation.replay["acquisition"] == "swapped"
        assert violation.replay["mode"] == "sanitize"

    def test_swapped_replay_deadlocks_dynamically(self):
        """Close the loop: the model's counterexample configuration drives
        the real simulator into the same deadlock."""
        result = check_algorithm("1R1W-SKSS-LB", 2, acquisition="swapped")
        (violation,) = result.violations()
        config = FuzzConfig.from_json(json.dumps(violation.replay))
        error = run_one(config)
        assert error is not None and "Deadlock" in error

    def test_swapped_survives_random_schedules_at_full_residency(self):
        """100 random schedules, zero failures: why sampling cannot find
        this bug (the model checker's pool-1 sweep does)."""
        from repro.gpusim import GPU
        from repro.sat import sat_reference
        from repro.sat.skss_lb import SKSSLB1R1W

        rng = np.random.default_rng(0)
        a = rng.integers(0, 10, size=(64, 64)).astype(np.float64)
        ref = sat_reference(a)
        for seed in range(100):
            gpu = GPU(seed=seed, scheduler_policy="random")
            res = SKSSLB1R1W(acquisition="swapped").run(a, gpu)
            assert np.array_equal(res.sat, ref), f"seed {seed}"


class TestCorpusExhaustive:
    @pytest.mark.parametrize("spec", CORPUS, ids=lambda s: s.name)
    def test_planted_bug_yields_expected_counterexample(self, spec):
        result = check_corpus(spec.name)
        assert not result.ok
        kinds = {v.kind for v in result.violations()}
        assert spec.expected_model in kinds

    def test_control_verifies_clean(self):
        result = check_corpus(CONTROL.name)
        assert result.ok, result.report()

    @pytest.mark.parametrize("spec", CORPUS, ids=lambda s: s.name)
    def test_counterexamples_replay_to_dynamic_findings(self, spec):
        result = check_corpus(spec.name)
        violation = result.violations()[0]
        config = FuzzConfig.from_json(json.dumps(violation.replay))
        error = run_one(config)
        assert error is not None and spec.name in error

    def test_check_dispatches_corpus_names(self):
        assert check("dropped-fence").algorithm == "corpus:dropped-fence"
        assert check("1R1W-SKSS").algorithm == "1R1W-SKSS"


class TestPORSoundness:
    """Partial-order reduction must change the state count, never the
    verdict."""

    def test_same_clean_verdict_fewer_states(self):
        reduced = check_algorithm("1R1W-SKSS-LB", 2, por=True)
        full = check_algorithm("1R1W-SKSS-LB", 2, por=False)
        assert reduced.ok and full.ok
        assert reduced.states < full.states

    def test_same_violation_without_por(self):
        result = check_algorithm("1R1W-SKSS-LB", 2, acquisition="swapped",
                                 por=False)
        kinds = {v.kind for v in result.violations()}
        assert kinds == {"deadlock"}

    def test_corpus_verdicts_match(self):
        for spec in CORPUS + (CONTROL,):
            reduced = check_corpus(spec.name, por=True)
            full = check_corpus(spec.name, por=False)
            assert reduced.ok == full.ok, spec.name


class TestReporting:
    def test_to_dict_is_json_stable(self):
        a = check_algorithm("1R1W-SKSS-LB", 2, acquisition="swapped")
        b = check_algorithm("1R1W-SKSS-LB", 2, acquisition="swapped")
        assert json.dumps(a.to_dict(), sort_keys=True) == \
            json.dumps(b.to_dict(), sort_keys=True)

    def test_violations_sorted_by_severity(self):
        d = check_corpus("dropped-fence").to_dict()
        for launch in d["launches"]:
            for pool in launch["pools"]:
                kinds = [v["kind"] for v in pool["violations"]]
                assert kinds == sorted(kinds, key=VIOLATION_KINDS.index)

    def test_report_mentions_replay_command(self):
        text = check_algorithm("1R1W-SKSS-LB", 2,
                               acquisition="swapped").report()
        assert "repro fuzz --replay" in text
        assert "deadlock" in text

    def test_every_kind_is_known(self):
        for spec in CORPUS:
            for v in check_corpus(spec.name).violations():
                assert v.kind in VIOLATION_KINDS


class TestDispatchAssumptionGuard:
    def test_refuses_if_dispatch_model_weakens(self, monkeypatch):
        """The dispatch normalization is only sound for the simulator's
        documented dispatcher; if that contract changes, refuse to verify."""
        import dataclasses

        import repro.gpusim as gpusim

        weakened = dataclasses.replace(gpusim.DispatchModel(), in_order=False)
        monkeypatch.setattr(gpusim, "DispatchModel", lambda: weakened)
        with pytest.raises(ModelCheckError, match="in_order"):
            check_model(build_model("1R1W-SKSS", 2))
