"""Static numerical-accuracy verifier: extraction, drift gate, proofs."""

import numpy as np
import pytest

from repro.analysis.numcheck import (GENERATORS, TIGHTNESS_PROBES,
                                     build_error_geometry, check_numeric_corpus,
                                     concrete_depth, dump_error_keys,
                                     error_bound_strings, extract_error_sites,
                                     find_numeric_bugs, gamma,
                                     integer_exactness, kernel_error_depth,
                                     run_numcheck, symbolic_depth,
                                     symbolic_host_depth, validate_bounds)
from repro.analysis.table1 import TABLE1_ORDER
from repro.errors import ConfigurationError, NumericModelError
from repro.sat.naive_2r2w import ERR_HINTS as NAIVE_HINTS
from repro.sat.naive_2r2w import column_scan_kernel


class TestExtraction:
    def test_naive_scan_has_one_accumulation_site(self):
        sites = extract_error_sites(column_scan_kernel)
        assert [s.role for s in sites] == ["accumulate"]
        assert sites[0].kernel == "column_scan_kernel"
        assert sites[0].file == "naive_2r2w.py"
        assert sites[0].line > 0

    def test_keys_are_unparsed_source(self):
        keys = dump_error_keys(column_scan_kernel)
        assert keys == list(NAIVE_HINTS["column_scan_kernel"])

    def test_duplicate_sites_rejected(self):
        def twin_kernel(ctx, data):
            acc = acc + ctx.gload_scalar(data, 0)
            acc = acc + ctx.gload_scalar(data, 0)

        with pytest.raises(NumericModelError, match="lexically unique"):
            extract_error_sites(twin_kernel)

    def test_carry_sites_need_a_float_binop(self):
        """A store of a plain value is data movement, not a rounding site."""
        def mover(ctx, data, out):
            value = ctx.gload_scalar(data, 0)
            ctx.gstore_scalar(out, 0, value)

        assert extract_error_sites(mover) == []

        def carrier(ctx, data, out):
            ctx.gstore_scalar(out, 0, left + ctx.gload_scalar(data, 0))

        sites = extract_error_sites(carrier)
        assert [s.role for s in sites] == ["carry"]


class TestDriftGate:
    def test_missing_hint_raises_with_location(self):
        g = build_error_geometry("2R2W", sym=False, n=128)
        with pytest.raises(NumericModelError, match=r"naive_2r2w\.py:\d+"):
            kernel_error_depth(column_scan_kernel, {}, g)

    def test_stale_hint_raises(self):
        g = build_error_geometry("2R2W", sym=False, n=128)
        hints = dict(NAIVE_HINTS["column_scan_kernel"])
        hints["acc = acc + nothing_like_this"] = {"depth": 1}
        with pytest.raises(NumericModelError, match="stale"):
            kernel_error_depth(column_scan_kernel, hints, g)

    def test_malformed_hint_raises(self):
        g = build_error_geometry("2R2W", sym=False, n=128)
        key = next(iter(NAIVE_HINTS["column_scan_kernel"]))
        with pytest.raises(NumericModelError, match="depth"):
            kernel_error_depth(column_scan_kernel,
                               {key: {"weight": 3}}, g)


class TestProvenDepths:
    #: The closed-form worst-path rounding depths — the headline proof.
    #: Changing a kernel's accumulation structure must change this pin.
    EXPECTED = {
        "2R2W": "2*t*W",
        "2R2W-optimal": "5/256*t*W + 387",
        "2R1W": "4*t + 5*W - 1",
        "1R1W": "2*t*W + 3*t + 2*W",
        "(1+r)R1W": "2*t*W + 11*t + 7*W + 1",
        "1R1W-SKSS": "2*t*W",
        "1R1W-SKSS-LB": "6*t + 5*W + 3",
    }

    @pytest.mark.parametrize("algorithm", TABLE1_ORDER)
    def test_closed_forms_pinned(self, algorithm):
        assert str(symbolic_depth(algorithm)) == self.EXPECTED[algorithm]

    def test_load_balanced_is_numerically_superior(self):
        """The paper's 1R1W-SKSS-LB is O(t + W) deep; plain 1R1W carries
        error through every tile prefix pass, O(t*W) — the load-balanced
        algorithm wins on accuracy as well as on memory traffic."""
        n, W = 4096, 32
        assert concrete_depth("1R1W-SKSS-LB", n, W) * 8 < \
            concrete_depth("1R1W", n, W)

    def test_host_leg_only_diverges_for_optimal(self):
        for algorithm in TABLE1_ORDER:
            device = str(symbolic_depth(algorithm))
            host = str(symbolic_host_depth(algorithm))
            if algorithm == "2R2W-optimal":
                assert host == "2*t*W"          # plain double cumsum, 2n
                assert host != device
            else:
                assert host == device

    def test_concrete_depth_monotone_in_n(self):
        for algorithm in TABLE1_ORDER:
            depths = [concrete_depth(algorithm, n, 32)
                      for n in (256, 512, 1024)]
            assert depths == sorted(depths)

    def test_concrete_depth_legs(self):
        n = 1024
        any_leg = concrete_depth("2R2W-optimal", n, 32, leg="any")
        assert any_leg == max(
            concrete_depth("2R2W-optimal", n, 32, leg="device"),
            concrete_depth("2R2W-optimal", n, 32, leg="host"))
        assert concrete_depth("2R2W-optimal", n, 32, leg="host") == 2 * n

    def test_bad_leg_rejected(self):
        with pytest.raises(ConfigurationError):
            concrete_depth("2R2W", 256, 32, leg="gpu")

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ConfigurationError):
            symbolic_depth("3R3W")

    def test_error_bound_strings_cover_table1(self):
        bounds = error_bound_strings()
        assert set(bounds) == set(TABLE1_ORDER)
        for algorithm, text in bounds.items():
            assert "gamma_D" in text and "SAT(|a|)" in text
            assert str(symbolic_depth(algorithm)) in text


class TestGamma:
    def test_value(self):
        eps = float(np.finfo(np.float32).eps)
        x = 100 * eps
        assert gamma(100, np.float32) == pytest.approx(x / (1 - x))

    def test_integer_dtypes_are_exact(self):
        assert gamma(10**9, np.int64) == 0.0

    def test_saturation_raises(self):
        with pytest.raises(NumericModelError, match="saturates"):
            gamma(2**25, np.float32)


class TestNumericBugDetector:
    def test_planted_roundtrip_caught(self):
        from repro.analysis.bugcorpus import rounding_roundtrip_kernel
        findings = find_numeric_bugs(rounding_roundtrip_kernel)
        assert [f["kind"] for f in findings] == ["rounding-roundtrip"]
        assert findings[0]["file"] == "bugcorpus.py"
        assert "re-rounds" in findings[0]["detail"]

    def test_clean_kernel_has_no_findings(self):
        assert find_numeric_bugs(column_scan_kernel) == []

    def test_corpus_check_passes(self):
        rows = check_numeric_corpus()
        assert rows and all(r["ok"] for r in rows), rows
        # Real kernels stay clean: no control rows are ever appended.
        assert not any(r["bug"].startswith("control:") for r in rows)


class TestValidation:
    def test_bounds_hold_at_small_n(self):
        rows = validate_bounds(["2R1W", "1R1W-SKSS-LB"], sizes=(128,),
                               dtypes=("float64",), device=False)
        assert rows and all(r["ok"] for r in rows), rows
        for row in rows:
            assert row["measured_depth"] <= row["proven_depth"]
            assert set(row["per_generator"]) == set(GENERATORS)

    def test_tightness_probes_are_generators(self):
        assert set(TIGHTNESS_PROBES) <= set(GENERATORS)

    def test_non_float_dtype_rejected(self):
        with pytest.raises(ConfigurationError):
            validate_bounds(["2R1W"], sizes=(128,), dtypes=("int32",),
                            device=False)

    def test_integer_exactness_cross_references_overflow(self):
        rows = {r["dtype"]: r for r in integer_exactness()}
        assert rows["uint8"]["error_free"] and rows["uint8"]["exact"]
        assert not rows["float32"]["exact"]
        assert all(r["ok"] for r in rows.values())

    def test_run_numcheck_payload(self):
        result = run_numcheck(["1R1W-SKSS-LB"], sizes=(128,),
                              dtypes=("float64",), device=False,
                              corpus=True)
        assert result["ok"]
        entry = result["algorithms"][0]
        assert entry["depth"] == "6*t + 5*W + 3"
        assert entry["bounds"]["float64"][0]["depth"] == \
            concrete_depth("1R1W-SKSS-LB", 128, 32)
        assert all(r["ok"] for r in result["validation"])
        assert all(c["ok"] for c in result["corpus"])
