"""Float32 SAT precision analysis (the paper's dtype at scale)."""

import numpy as np
import pytest

from repro.analysis.precision import (max_relative_error, precision_report,
                                      sat_float32, sat_kahan, ulps_needed)
from repro.errors import ConfigurationError
from repro.sat import sat_reference


class TestFloat32Sat:
    def test_small_integer_matrices_exact(self, rng):
        a = rng.integers(0, 10, size=(32, 32)).astype(np.float64)
        assert np.array_equal(sat_float32(a), sat_reference(a))

    def test_error_grows_with_n(self):
        rows = precision_report((64, 512), seed=1)
        assert rows[1].err_float32 > rows[0].err_float32

    def test_error_well_under_worst_case_bound(self):
        for row in precision_report((64, 256), seed=2):
            assert 0 < row.err_float32 < ulps_needed(row.n)

    def test_non_2d_rejected(self):
        with pytest.raises(ConfigurationError):
            sat_float32(np.zeros(5))
        with pytest.raises(ConfigurationError):
            sat_kahan(np.zeros(5))


class TestKahan:
    def test_kahan_matches_reference_on_exact_input(self, rng):
        a = rng.integers(0, 10, size=(24, 24)).astype(np.float64)
        assert np.array_equal(sat_kahan(a), sat_reference(a))

    def test_kahan_beats_plain_float32(self):
        """Compensated summation cuts the error by a sizeable factor."""
        for row in precision_report((256, 1024), seed=3):
            assert row.err_kahan < row.err_float32 / 2

    def test_kahan_error_nearly_flat_in_n(self):
        rows = precision_report((64, 1024), seed=4)
        assert rows[1].err_kahan < 10 * rows[0].err_kahan

    def test_kahan_dtype(self):
        assert sat_kahan(np.random.default_rng(0).random((8, 8))).dtype == \
            np.float32

    def test_kahan_float64_mode(self):
        """numcheck's float64 oracle: compensated float64 scans must beat a
        plain float64 double cumsum on half-ulp dust (the adversarial
        family that maximizes plain-summation absorption)."""
        from repro.apps.synthetic import halfulp_dust
        a = halfulp_dust(256, dtype=np.float64, seed=1)
        got = sat_kahan(a, np.float64)
        assert got.dtype == np.float64
        import math
        from fractions import Fraction
        exact = Fraction(0)
        for v in a.ravel():
            exact += Fraction(v)
        plain = a.cumsum(axis=0).cumsum(axis=1)
        err_kahan = abs(Fraction(float(got[-1, -1])) - exact)
        err_plain = abs(Fraction(float(plain[-1, -1])) - exact)
        assert err_kahan <= err_plain
        assert math.isclose(float(got[-1, -1]), float(exact),
                            rel_tol=1e-12)


class TestErrorMetric:
    def test_zero_for_exact(self, rng):
        a = rng.integers(0, 5, size=(16, 16)).astype(np.float64)
        assert max_relative_error(sat_reference(a), a) == 0.0

    def test_detects_perturbation(self, rng):
        a = rng.random((16, 16))
        sat = sat_reference(a).copy()
        sat[8, 8] += 1.0
        assert max_relative_error(sat, a) > 1e-3

    def test_small_entries_do_not_inflate_the_metric(self):
        """The max(|exact|, 1) floor keeps near-zero SAT corners from
        turning a tiny absolute error into a huge relative one."""
        a = np.full((8, 8), 1e-9)
        sat = sat_reference(a) + 1e-10
        assert max_relative_error(sat, a) <= 1e-10 * (1 + 1e-6)


class TestReportShape:
    def test_rows_follow_sizes(self):
        rows = precision_report((32, 64), seed=5)
        assert [r.n for r in rows] == [32, 64]

    def test_ulps_needed_quadratic(self):
        assert ulps_needed(2048) == 4 * ulps_needed(1024)
        assert ulps_needed(1024) > 0
