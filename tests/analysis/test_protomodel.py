"""Protocol extraction: AST skeletons, hint cross-checks, model builders.

The model checker is only as honest as its models; these tests pin the two
guarantees that keep the models tied to the kernels: (1) extraction recovers
the declared ``MODEL_HINTS`` shape for every kernel, and refuses on drift;
(2) the builders' walk geometry is re-derived from the kernels' own
``status_index`` lambdas, not re-invented.
"""

import dataclasses

import pytest

from repro.analysis.protomodel import (MODEL_ALGORITHMS, build_corpus_model,
                                       build_model, col_mass, extract_kernel,
                                       rect_mass, row_mass, unit,
                                       validate_hints, walker_status_indexer)
from repro.errors import ConfigurationError, ExtractionError


class TestMassHelpers:
    """Each input cell carries a distinct power of two, so any partial sum
    identifies exactly which cells it covers."""

    def test_units_are_distinct_bits(self):
        t = 3
        masses = {unit(i, j, t) for i in range(t) for j in range(t)}
        assert len(masses) == t * t
        for m in masses:
            assert m & (m - 1) == 0  # a single bit

    def test_rect_mass_is_the_region_sum(self):
        t = 3
        for i in range(t):
            for j in range(t):
                expected = sum(unit(a, b, t)
                               for a in range(i + 1) for b in range(j + 1))
                assert rect_mass(i, j, t) == expected

    def test_row_and_col_masses(self):
        t = 4
        assert row_mass(1, 0, 2, t) == sum(unit(1, j, t) for j in range(3))
        assert col_mass(0, 2, 3, t) == sum(unit(i, 3, t) for i in range(3))

    def test_full_mass_is_all_ones(self):
        t = 2
        assert rect_mass(t - 1, t - 1, t) == (1 << (t * t)) - 1


class TestExtraction:
    def test_skss_lb_skeleton(self):
        from repro.sat import skss_lb
        from repro.sat.tilecommon import (C_GCS, C_LCS, R_GLS, R_GRS, R_GS,
                                          R_LRS)
        proto = extract_kernel(skss_lb.skss_lb_kernel)
        assert proto.ticket and proto.counter == "counter"
        assert proto.publishes == (
            ("lrs", "R", R_LRS), ("lcs", "C", C_LCS), ("grs", "R", R_GRS),
            ("gcs", "C", C_GCS), ("gls", "R", R_GLS), ("gs", "R", R_GS))
        assert [w[4] for w in proto.walks] == ["grs", "gcs", "gs"]
        assert proto.waits == ()
        assert proto.stores == ("b",) and proto.loads == ("a",)
        assert proto.flag_stores == 0

    def test_skss_wait_threshold_is_resolved(self):
        from repro.sat import skss
        proto = extract_kernel(skss.skss_kernel)
        assert proto.ticket
        assert proto.waits == (("R", skss.GRS_READY),)
        assert proto.publishes == (("grs", "R", skss.GRS_READY),)

    def test_scan1d_walk_event(self):
        from repro.primitives import scan1d
        proto = extract_kernel(scan1d.row_scan_kernel)
        assert proto.ticket
        (walk,) = proto.walks
        assert walk == ("status", scan1d.STATUS_AGGREGATE,
                        scan1d.STATUS_PREFIX, "aggregates", "prefixes")

    def test_every_hinted_kernel_validates(self):
        """The full 13-kernel sweep: extraction matches each module's
        MODEL_HINTS (this is what build_model runs before any exploration)."""
        import repro.primitives.colscan
        import repro.primitives.scan1d
        import repro.sat.hybrid_1r1w
        import repro.sat.kasagi_1r1w
        import repro.sat.naive_2r2w
        import repro.sat.nehab_2r1w
        import repro.sat.skss
        import repro.sat.skss_lb
        modules = [repro.primitives.scan1d, repro.primitives.colscan,
                   repro.sat.naive_2r2w, repro.sat.nehab_2r1w,
                   repro.sat.kasagi_1r1w, repro.sat.hybrid_1r1w,
                   repro.sat.skss, repro.sat.skss_lb]
        checked = 0
        for module in modules:
            for name, hints in module.MODEL_HINTS.items():
                proto = extract_kernel(getattr(module, name))
                validate_hints(proto, hints)  # raises on drift
                checked += 1
        assert checked == 13


class TestHintDrift:
    """A kernel edit that changes synchronization structure without updating
    MODEL_HINTS must refuse to build a model, loudly."""

    def _proto(self):
        from repro.sat import skss_lb
        return (extract_kernel(skss_lb.skss_lb_kernel),
                dict(skss_lb.MODEL_HINTS["skss_lb_kernel"]))

    def test_matching_hints_pass(self):
        proto, hints = self._proto()
        assert validate_hints(proto, hints) is proto

    def test_missing_publish_is_drift(self):
        proto, hints = self._proto()
        hints["publishes"] = hints["publishes"][:-1]
        with pytest.raises(ExtractionError, match="drifted"):
            validate_hints(proto, hints)

    def test_wrong_ticket_is_drift(self):
        proto, hints = self._proto()
        hints["ticket"] = False
        with pytest.raises(ExtractionError, match="drifted"):
            validate_hints(proto, hints)

    def test_wrong_stores_are_drift(self):
        proto, hints = self._proto()
        hints["stores"] = ("b", "extra")
        with pytest.raises(ExtractionError, match="drifted"):
            validate_hints(proto, hints)

    def test_undeclared_flag_store_refuses(self):
        proto, hints = self._proto()
        tampered = dataclasses.replace(
            proto, events=proto.events + (("flag-store", "R"),))
        with pytest.raises(ExtractionError, match="flag store"):
            validate_hints(tampered, hints)

    def test_unhinted_kernel_refuses(self):
        from repro.analysis.protomodel import _extract_validated

        def rogue_kernel(ctx, a):
            pass
        with pytest.raises(ExtractionError, match="MODEL_HINTS"):
            _extract_validated(rogue_kernel)


class TestWalkerGeometry:
    """The builders' step lists are checked against the status_index lambdas
    compiled from the kernels' own walker helpers."""

    def test_row_walk_indexes_columns(self):
        from repro.sat import tilecommon as tc
        idx = walker_status_indexer(tc.row_lookback)
        t, I, J = 3, 2, 2
        assert [idx(t, I, J, j) for j in range(3)] == [I * t + j
                                                       for j in range(3)]

    def test_col_walk_indexes_rows(self):
        from repro.sat import tilecommon as tc
        idx = walker_status_indexer(tc.col_lookback)
        t, I, J = 3, 2, 2
        assert [idx(t, I, J, i) for i in range(3)] == [i * t + J
                                                       for i in range(3)]

    def test_diag_walk_steps_up_left(self):
        from repro.sat import tilecommon as tc
        idx = walker_status_indexer(tc.diag_lookback)
        t = 3
        assert [idx(t, 2, 2, s) for s in range(3)] == [8, 4, 0]


class TestCorpusModels:
    def test_flag_kernels_compile_to_producer_consumer(self):
        for name in ("dropped-fence", "premature-flag", "correct"):
            model = build_corpus_model(name)
            assert model.algorithm == f"corpus:{name}"
            (launch,) = model.launches
            assert len(launch.programs) == 2
            assert launch.out_spec == {("out", 0): 42}

    def test_counter_kernel_has_no_out_spec(self):
        model = build_corpus_model("nonatomic-counter")
        (launch,) = model.launches
        assert launch.out_spec == {}  # duplicate-ticket check covers it


class TestBuildModel:
    @pytest.mark.parametrize("name", MODEL_ALGORITHMS)
    def test_all_algorithms_build(self, name):
        model = build_model(name, 2)
        assert model.algorithm == name
        assert model.t == 2
        assert model.launches
        for launch in model.launches:
            assert launch.programs

    def test_algorithms_match_table1_order(self):
        from repro.analysis.complexity import TABLE1_ORDER
        assert MODEL_ALGORITHMS == TABLE1_ORDER

    def test_aliases_resolve(self):
        assert build_model("skss-lb", 2).algorithm == "1R1W-SKSS-LB"

    def test_grid_size_bounds(self):
        with pytest.raises(ConfigurationError):
            build_model("1R1W-SKSS", 0)
        with pytest.raises(ConfigurationError):
            build_model("1R1W-SKSS", 7)

    def test_unknown_acquisition_rejected(self):
        with pytest.raises(ConfigurationError):
            build_model("1R1W-SKSS-LB", 2, acquisition="spiral")

    def test_swapped_acquisition_reorders_dispatch(self):
        base = build_model("1R1W-SKSS-LB", 2)
        swapped = build_model("1R1W-SKSS-LB", 2, acquisition="swapped")
        (launch,) = base.launches
        (launch_s,) = swapped.launches
        labels = [p.label for p in launch.programs]
        labels_s = [p.label for p in launch_s.programs]
        assert sorted(labels) == sorted(labels_s)
        assert labels != labels_s

    def test_final_launch_covers_full_mass(self):
        for name in MODEL_ALGORITHMS:
            model = build_model(name, 2)
            spec = model.launches[-1].out_spec
            assert spec[("b", 1, 1)] == rect_mass(1, 1, 2)
