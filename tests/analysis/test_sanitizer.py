"""Sanitizer tests: the seven algorithms are clean; the machinery is sound."""

import numpy as np
import pytest

from repro.analysis import (FuzzConfig, Sanitizer, load_replay_config,
                            run_one, sanitize_algorithm, sanitize_all)
from repro.analysis.sanitizer import _join, _leq
from repro.errors import ConfigurationError
from repro.sat import ALGORITHMS


class TestVectorClocks:
    def test_join_is_pointwise_max(self):
        a = {1: 3, 2: 1}
        _join(a, {2: 5, 3: 2})
        assert a == {1: 3, 2: 5, 3: 2}

    def test_leq_missing_keys_are_zero(self):
        assert _leq({}, {1: 1})
        assert _leq({1: 1}, {1: 1, 2: 4})
        assert not _leq({1: 2}, {1: 1})
        assert not _leq({3: 1}, {1: 5, 2: 5})

    def test_leq_reflexive_and_join_upper_bound(self):
        a, b = {1: 2, 2: 7}, {2: 3, 3: 1}
        joined = dict(a)
        _join(joined, b)
        assert _leq(a, joined) and _leq(b, joined)


class TestAlgorithmsAreClean:
    """The paper's protocol is correct: no algorithm produces a single race
    or protocol finding under the adversarial schedule — the PR's core
    acceptance criterion."""

    @pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
    @pytest.mark.parametrize("consistency", ["strong", "relaxed"])
    def test_clean_under_adversarial_lifo(self, algorithm, consistency):
        run = sanitize_algorithm(algorithm, n=64, consistency=consistency,
                                 policy="lifo")
        assert run.correct
        assert not run.findings, [str(f) for f in run.findings]
        assert run.events > 0

    @pytest.mark.parametrize("algorithm", ["1R1W-SKSS", "1R1W-SKSS-LB"])
    def test_spin_algorithms_clean_under_random_policy(self, algorithm):
        run = sanitize_algorithm(algorithm, n=96, policy="random", seed=3)
        assert run.ok, [str(f) for f in run.findings]

    def test_lookback_clean_under_residency_pressure(self):
        run = sanitize_algorithm("1R1W-SKSS-LB", n=96, policy="lifo",
                                 residency=2)
        assert run.ok, [str(f) for f in run.findings]

    def test_sanitize_all_report(self):
        report = sanitize_all(["2R2W", "1R1W-SKSS-LB"], n=32,
                              consistencies=("relaxed",), policies=("lifo",))
        assert report.ok and len(report.runs) == 2
        assert "OK" in report.summary()
        assert all("OK" in r.summary() for r in report.runs)


class TestSanitizerMechanics:
    def test_finding_dedupe_and_cap(self):
        from .bug_corpus import CORPUS, run_spec
        spec = next(s for s in CORPUS if s.name == "nonatomic-counter")
        s = run_spec(spec, seed=0)
        # Both blocks store the counter, but per-(rule, buffer, index)
        # dedupe keeps the report readable: exactly one finding.
        assert len([f for f in s.findings
                    if f.rule == "plain-counter-store"]) == 1

    def test_observer_survives_multiple_launches(self):
        """One sanitizer across several kernel launches: the kernel boundary
        is a barrier, so cross-kernel accesses are ordered and clean."""
        run = sanitize_algorithm("1R1W", n=64)  # multi-kernel algorithm
        assert run.ok, [str(f) for f in run.findings]

    def test_summary_mentions_counts(self):
        s = Sanitizer()
        assert "OK" in s.summary()
        assert s.ok and not s.races and not s.protocol_violations


class TestFuzzSanitizeAndReplay:
    CONFIG = FuzzConfig(algorithm="1R1W-SKSS-LB", n=32, tile_width=32,
                        policy="lifo", sim_seed=1, data_seed=2,
                        residency=2, consistency="relaxed", tiny_device=True)

    def test_run_one_with_sanitize_is_clean(self):
        assert run_one(self.CONFIG, sanitize=True) is None

    def test_config_json_roundtrip(self):
        text = self.CONFIG.to_json()
        assert FuzzConfig.from_json(text) == self.CONFIG

    def test_replay_from_file_and_inline(self, tmp_path):
        p = tmp_path / "config.json"
        p.write_text(self.CONFIG.to_json())
        assert load_replay_config(str(p)) == self.CONFIG
        assert load_replay_config(self.CONFIG.to_json()) == self.CONFIG

    def test_replay_rejects_bad_configs(self):
        with pytest.raises(ConfigurationError):
            load_replay_config("{not json")
        with pytest.raises(ConfigurationError):
            load_replay_config('{"algorithm": "2R2W", "bogus_field": 1}')
        with pytest.raises(ConfigurationError):
            load_replay_config('{"algorithm": "2R2W"}')  # missing fields
        with pytest.raises(ConfigurationError):
            load_replay_config("/no/such/file.json")

    def test_replayed_failure_reproduces(self):
        """A sanitizer failure found by fuzzing replays identically from its
        serialized config (determinism is the whole value of --replay)."""
        first = run_one(self.CONFIG, sanitize=True)
        again = run_one(FuzzConfig.from_json(self.CONFIG.to_json()),
                        sanitize=True)
        assert first == again


def test_data_matrix_is_integer_valued():
    """The sanitized runs compare bit-for-bit against the reference, which
    is only sound for integer-valued float64 data."""
    run = sanitize_algorithm("2R2W", n=32)
    assert run.correct
    rng = np.random.default_rng(0)
    a = rng.integers(0, 50, size=(32, 32)).astype(np.float64)
    assert np.array_equal(a, np.trunc(a))
