"""Table I as data: the deduplicated symbolic rows and their consumers."""

from fractions import Fraction

import pytest

from repro.analysis.complexity import TABLE1_ORDER, render_table1, table1_row
from repro.analysis.table1 import (TABLE1, Table1Sym, leading_traffic,
                                   table1_sym)
from repro.errors import ConfigurationError


class TestTable:
    def test_covers_every_algorithm_in_order(self):
        assert tuple(TABLE1) == TABLE1_ORDER

    def test_rows_are_frozen(self):
        row = table1_sym("2R2W")
        assert isinstance(row, Table1Sym)
        with pytest.raises(AttributeError):
            row.reads = "changed"

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ConfigurationError):
            table1_sym("4R0W")

    def test_traffic_classes(self):
        assert table1_sym("2R2W").read_class == 2
        assert table1_sym("2R1W").read_class == 2
        assert table1_sym("2R1W").write_class == 1
        assert table1_sym("(1+r)R1W").read_class == Fraction(5, 4)
        for name in ("1R1W", "1R1W-SKSS", "1R1W-SKSS-LB"):
            assert table1_sym(name).read_class == 1
            assert table1_sym(name).write_class == 1

    def test_remainder_classes(self):
        assert table1_sym("2R2W").remainder == ""
        assert table1_sym("2R2W-optimal").remainder == "n^2"
        for name in ("2R1W", "1R1W", "(1+r)R1W", "1R1W-SKSS",
                     "1R1W-SKSS-LB"):
            assert table1_sym(name).remainder == "n^2/W"


class TestLeadingTraffic:
    def test_values(self):
        n = 512
        assert leading_traffic("2R2W", n) == (2 * n * n, 2 * n * n)
        assert leading_traffic("1R1W-SKSS", n) == (n * n, n * n)
        reads, writes = leading_traffic("(1+r)R1W", n)
        assert reads == 1.25 * n * n
        assert writes == n * n


class TestSingleSourceOfTruth:
    """Every consumer derives from TABLE1 — these pins catch drift."""

    def test_complexity_rows_use_table1_strings(self):
        for name in TABLE1_ORDER:
            sym = table1_sym(name)
            row = table1_row(name, 1024)
            assert row.kernel_calls_sym == sym.kernel_calls
            assert row.threads_sym == sym.threads
            assert row.reads_sym == sym.reads
            assert row.writes_sym == sym.writes
            assert row.parallelism == sym.parallelism

    def test_render_table1_prints_table1_verbatim(self):
        text = render_table1()
        for sym in TABLE1.values():
            for field in (sym.kernel_calls, sym.threads, sym.reads,
                          sym.writes):
                assert field in text

    def test_perfmodel_leading_bytes_derive_from_table1(self):
        from repro.perfmodel.costs import ELEMENT_BYTES, leading_bytes
        n = 4096
        for name in TABLE1_ORDER:
            reads, writes = table1_sym(name).read_class, \
                table1_sym(name).write_class
            read_b, write_b = leading_bytes(name, n)
            assert read_b == float(reads) * n * n * ELEMENT_BYTES
            assert write_b == float(writes) * n * n * ELEMENT_BYTES

    def test_kernel_costs_leading_bytes_match_table1(self):
        """At large n the priced per-kernel traffic must sum to the Table I
        leading term plus only lower-order metadata: never below the lead,
        never more than ~15% above it (the O(n²/W) boundary terms)."""
        from repro.perfmodel.costs import kernel_costs, leading_bytes
        n = 8192
        for name in TABLE1_ORDER:
            costs = kernel_costs(name, n, W=32, r=0.25)
            priced = sum(k.coalesced_bytes + k.strided_bytes for k in costs)
            lead = sum(leading_bytes(name, n))
            assert lead <= priced <= 1.15 * lead, \
                f"{name}: priced {priced} vs lead {lead}"

    def test_costcheck_proves_each_row(self):
        """The full loop: the static verifier accepts exactly this table."""
        from repro.analysis.costcheck import prove_table1
        for name in TABLE1_ORDER:
            proof = prove_table1(name)
            assert proof["read_class"] == str(table1_sym(name).read_class)
            assert proof["ok"], proof["problems"]
