"""Derived tolerances: the single source of every SAT comparison budget."""

import re
from pathlib import Path

import numpy as np
import pytest

from repro.analysis.numcheck import concrete_depth
from repro.analysis.tolerances import (Tolerance, assert_sat_close,
                                       derived_tolerance, sat_close)
from repro.apps.synthetic import sign_alternating
from repro.errors import ConfigurationError
from repro.sat import sat_reference

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"


class TestDerivedTolerance:
    def test_reference_oracle_adds_double_cumsum_depth(self):
        exact = derived_tolerance("2R1W", 256, np.float64, oracle="exact")
        ref = derived_tolerance("2R1W", 256, np.float64, oracle="reference")
        assert exact.depth == concrete_depth("2R1W", exact.n, 32)
        assert ref.depth == exact.depth + 2 * ref.n

    def test_host_oracle_doubles_the_depth(self):
        exact = derived_tolerance("2R1W", 256, np.float64, oracle="exact")
        host = derived_tolerance("2R1W", 256, np.float64, oracle="host")
        assert host.depth == 2 * exact.depth

    def test_extra_depth_charged(self):
        base = derived_tolerance("2R1W", 256, np.float64, oracle="exact")
        more = derived_tolerance("2R1W", 256, np.float64, oracle="exact",
                                 extra_depth=512)
        assert more.depth == base.depth + 512

    def test_none_is_worst_case_over_table1(self):
        tol = derived_tolerance(None, 256, np.float32, oracle="exact")
        assert tol.depth == max(
            concrete_depth(a, tol.n, 32)
            for a in ("2R2W", "2R2W-optimal", "2R1W", "1R1W", "(1+r)R1W",
                      "1R1W-SKSS", "1R1W-SKSS-LB"))

    def test_shape_padded_to_layout_grain(self):
        """Sides pad to lcm(tile_width, 256) so the worst-case path can
        always construct the 2R2W-optimal scan layouts concretely."""
        tol = derived_tolerance(None, (37, 11), np.float32, tile_width=16)
        assert tol.n == 256
        tol = derived_tolerance(None, 300, np.float32, tile_width=24)
        assert tol.n % 24 == 0 and tol.n % 256 == 0 and tol.n >= 300

    def test_integer_accumulator_is_exact(self):
        tol = derived_tolerance("2R2W", 512, np.int64)
        assert tol.exact and tol.gamma == 0.0 and tol.eps == 0.0
        assert "exact" in tol.describe()

    def test_float32_budget_exceeds_float64(self):
        t32 = derived_tolerance("2R2W", 512, np.float32)
        t64 = derived_tolerance("2R2W", 512, np.float64)
        assert t32.gamma > t64.gamma > 0.0

    def test_bad_oracle_rejected(self):
        with pytest.raises(ConfigurationError):
            derived_tolerance("2R2W", 256, np.float64, oracle="vibes")

    def test_bad_shape_rejected(self):
        with pytest.raises(ConfigurationError):
            derived_tolerance("2R2W", 0, np.float64)

    def test_describe_names_the_budget(self):
        text = derived_tolerance("2R1W", 256, np.float32).describe()
        assert "2R1W" in text and "SAT(|a|)" in text and "float32" in text


class TestSatClose:
    def test_accepts_rounded_result(self):
        rng = np.random.default_rng(0)
        a = rng.random((64, 64)).astype(np.float32)
        got = np.cumsum(np.cumsum(a, axis=0, dtype=np.float32), axis=1,
                        dtype=np.float32)
        want = sat_reference(a).astype(np.float32)
        tol = derived_tolerance(None, a.shape, np.float32)
        assert sat_close(got, want, tol, abs_input=a)

    def test_rejects_real_corruption(self):
        rng = np.random.default_rng(1)
        a = rng.random((64, 64))
        want = sat_reference(a)
        got = want.copy()
        got[10, 10] += 1.0
        tol = derived_tolerance(None, a.shape, np.float64)
        assert not sat_close(got, want, tol, abs_input=a)

    def test_shape_mismatch_is_false(self):
        tol = derived_tolerance(None, 64, np.float64)
        assert not sat_close(np.zeros((4, 4)), np.zeros((4, 5)), tol)

    def test_integer_path_requires_exact_match(self):
        tol = derived_tolerance(None, 64, np.int64)
        a = np.arange(16, dtype=np.int64).reshape(4, 4)
        assert sat_close(a, a.copy(), tol)
        assert not sat_close(a, a + 1, tol)

    def test_mass_relative_survives_cancellation(self):
        """On sign-mixed input a SAT entry can be ~0 while legitimate
        rounding error is large relative to it; a result-relative check
        (the old ``rtol * |want|``) rejects healthy results there, while
        the mass-relative budget accepts them and still catches real
        corruption at the same entry."""
        a = sign_alternating(256, seed=5).astype(np.float32)
        want = sat_reference(a).astype(np.float32)
        tol = derived_tolerance(None, a.shape, np.float32)
        mass = np.abs(a.astype(np.float64)).cumsum(0).cumsum(1)
        # Perturb by a plausible rounding error: far above rtol*|want| at
        # a near-cancelled entry, far below the mass budget.
        i, j = np.unravel_index(
            int(np.argmin(np.abs(want) / mass.astype(np.float32))),
            want.shape)
        got = want.copy()
        got[i, j] += np.float32(0.1 * tol.gamma * mass[i, j])
        assert not np.allclose(got[i, j], want[i, j], rtol=1e-5)
        assert sat_close(got, want, tol, abs_input=a)
        got[i, j] = want[i, j] + np.float32(10 * tol.gamma * mass[i, j])
        assert not sat_close(got, want, tol, abs_input=a)

    def test_fallback_scale_without_input(self):
        want = np.full((8, 8), 100.0)
        tol = derived_tolerance(None, 8, np.float64)
        assert sat_close(want + 50 * tol.gamma, want, tol)
        assert not sat_close(want + 200.0, want, tol)


class TestAssertSatClose:
    def test_silent_on_success(self):
        tol = derived_tolerance(None, 8, np.float64)
        assert_sat_close(np.ones((4, 4)), np.ones((4, 4)), tol)

    def test_reports_worst_offender(self):
        tol = derived_tolerance(None, 8, np.float64)
        got = np.ones((4, 4))
        got[2, 3] = 5.0
        with pytest.raises(AssertionError) as err:
            assert_sat_close(got, np.ones((4, 4)), tol, context="unit")
        msg = str(err.value)
        assert "unit" in msg and "(2, 3)" in msg and "budget" in msg

    def test_integer_mismatch_names_exactness(self):
        tol = derived_tolerance(None, 8, np.int32)
        with pytest.raises(AssertionError, match="exact match"):
            assert_sat_close(np.zeros((2, 2), np.int32),
                             np.ones((2, 2), np.int32), tol)

    def test_shape_mismatch_raises(self):
        tol = derived_tolerance(None, 8, np.float64)
        with pytest.raises(AssertionError, match="shape"):
            assert_sat_close(np.zeros((2, 2)), np.zeros((3, 3)), tol)


class TestSingleSourceInvariant:
    def test_no_allclose_outside_tolerances(self):
        """Every SAT comparison goes through the derived-tolerance module;
        ``np.allclose`` (whose ``atol + rtol*|want|`` shape cannot express
        the mass-relative bound) appears nowhere else in the package."""
        offenders = []
        for path in sorted(SRC.rglob("*.py")):
            if path.name == "tolerances.py":
                continue
            for lineno, line in enumerate(
                    path.read_text().splitlines(), start=1):
                if re.search(r"\ballclose\s*\(", line):
                    offenders.append(f"{path.relative_to(SRC)}:{lineno}")
        assert offenders == [], offenders

    def test_tolerance_is_frozen(self):
        tol = derived_tolerance(None, 8, np.float64)
        assert isinstance(tol, Tolerance)
        with pytest.raises(AttributeError):
            tol.gamma = 0.5
