"""check_result / check_counts helpers."""

import numpy as np
import pytest

from repro.analysis import check_counts, check_result
from repro.gpusim import GPU
from repro.sat import SKSSLB1R1W, compute_sat, sat_reference


class TestCheckResult:
    def test_accepts_correct(self, small_matrix):
        res = compute_sat(small_matrix, gpu=GPU(seed=1))
        assert check_result(res, small_matrix)

    def test_rejects_corrupted(self, small_matrix):
        res = compute_sat(small_matrix, gpu=GPU(seed=1))
        res.sat[3, 3] += 1
        assert not check_result(res, small_matrix)

    def test_float32_mixed_magnitude_at_scale(self):
        """The regression the derived tolerances exist for: a healthy
        float32 SAT of a large sign-mixed matrix.  The retired hardcoded
        constants (``rtol=1e-9, atol=1e-6``) misjudge this result — its
        legitimate rounding error dwarfs both — while the proven
        mass-relative budget accepts it and still rejects corruption."""
        from repro.apps.synthetic import sign_alternating
        a = sign_alternating(4096, seed=7).astype(np.float32)
        res = compute_sat(a, simulate=False)
        want = sat_reference(a.astype(np.float64)).astype(np.float32)
        diff = np.abs(res.sat.astype(np.float64)
                      - want.astype(np.float64))
        assert (diff > 1e-6 + 1e-9 * np.abs(want)).any()  # old gate fails
        assert check_result(res, a)
        res.sat[2048, 2048] += np.float32(
            64 * np.abs(a).astype(np.float64).sum())
        assert not check_result(res, a)


class TestCheckCounts:
    def test_ok_for_honest_run(self, small_matrix):
        res = SKSSLB1R1W().run(small_matrix, GPU(seed=1))
        assert check_counts(res).ok

    def test_host_result_rejected(self, small_matrix):
        res = compute_sat(small_matrix, simulate=False)
        with pytest.raises(AssertionError):
            check_counts(res)

    def test_fails_on_missing_traffic(self, small_matrix):
        """A run that claims fewer reads than n² must fail the lower bound."""
        res = SKSSLB1R1W().run(small_matrix, GPU(seed=1))
        res.report.kernels[0].traffic.global_read_requests = \
            small_matrix.size // 2
        assert not check_counts(res).ok

    def test_fails_on_excess_traffic(self, small_matrix):
        res = SKSSLB1R1W().run(small_matrix, GPU(seed=1))
        res.report.kernels[0].traffic.global_read_requests = \
            4 * small_matrix.size
        assert not check_counts(res).ok

    def test_string_rendering(self, small_matrix):
        res = SKSSLB1R1W().run(small_matrix, GPU(seed=1))
        text = str(check_counts(res))
        assert "1R1W-SKSS-LB" in text and "OK" in text
