"""Dependence-parallelism profiles."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.waves import (lookback_profile, profile, render_profile,
                                  skss_profile, wavefront_profile)
from repro.errors import ConfigurationError


class TestWavefront:
    def test_widths_are_diagonals(self):
        p = wavefront_profile(4)
        assert p.widths == (1, 2, 3, 4, 3, 2, 1)

    def test_critical_path(self):
        assert wavefront_profile(8).critical_path == 15

    def test_covers_all_tiles(self):
        assert wavefront_profile(7).total_tasks == 49


class TestSKSS:
    def test_capped_at_t_columns(self):
        p = skss_profile(4)
        assert p.max_width == 4
        assert p.critical_path == 7

    def test_equal_to_wavefront_for_square_grid(self):
        """For a t x t grid the diagonal never exceeds t, so the cap is
        inactive — SKSS's limitation is worker *count*, which the cost model
        charges, not extra dependence depth."""
        assert skss_profile(5).widths == wavefront_profile(5).widths


class TestLookback:
    def test_constant_depth(self):
        for t in (1, 4, 32):
            assert lookback_profile(t).critical_path == 5

    def test_full_width_everywhere(self):
        p = lookback_profile(6)
        assert p.max_width == 36
        assert p.mean_width == 36.0

    def test_depth_independent_of_size(self):
        assert lookback_profile(2).critical_path == \
            lookback_profile(64).critical_path


class TestComparison:
    @given(t=st.integers(4, 40))
    def test_lookback_shallower_beyond_tiny_grids(self, t):
        """The look-back's constant 5 levels beat the Θ(t) wavefront chain
        for every grid with 4+ tiles per side (they tie at t=3 and the
        wavefront is trivially shallow below that)."""
        assert lookback_profile(t).critical_path < \
            wavefront_profile(t).critical_path

    def test_crossover_at_t3(self):
        assert lookback_profile(3).critical_path == \
            wavefront_profile(3).critical_path == 5

    @given(t=st.integers(2, 40))
    def test_lookback_wider_on_average(self, t):
        assert lookback_profile(t).mean_width >= \
            wavefront_profile(t).mean_width

    def test_profile_dispatch(self):
        assert profile("1R1W", 4).algorithm == "1R1W"
        with pytest.raises(ConfigurationError):
            profile("2R2W", 4)

    def test_invalid_t(self):
        with pytest.raises(ConfigurationError):
            wavefront_profile(0)


class TestRendering:
    def test_short_profile(self):
        art = render_profile(wavefront_profile(3))
        assert "critical path=5" in art
        assert art.count("L") >= 5

    def test_long_profile_elided(self):
        art = render_profile(wavefront_profile(32))
        assert "..." in art
