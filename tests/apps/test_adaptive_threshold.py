"""Adaptive thresholding on the synthetic document workload."""

import numpy as np
import pytest

from repro.apps import adaptive_threshold, global_threshold
from repro.apps.synthetic import noisy_document
from repro.errors import ConfigurationError


class TestAdaptiveThreshold:
    def test_recovers_text_under_uneven_illumination(self):
        """The motivating scenario: on a document with an illumination
        gradient, local-mean thresholding segments strokes in both the bright
        and the dark halves, while a global threshold misses one side."""
        doc = noisy_document(128, seed=1)
        adaptive = adaptive_threshold(doc, radius=8, ratio=0.3)
        left = adaptive[:, :64].mean()
        right = adaptive[:, 64:].mean()
        # Strokes exist everywhere: both halves have foreground.
        assert left > 0.02 and right > 0.02
        # But foreground is sparse (text, not the page).
        assert adaptive.mean() < 0.35

    def test_global_threshold_breaks_on_gradient(self):
        """The baseline comparison: choose the threshold that works on the
        dark side and it floods the bright side (or vice versa)."""
        doc = noisy_document(128, seed=1)
        flooded = global_threshold(doc, level=0.75)
        adaptive = adaptive_threshold(doc, radius=8, ratio=0.3)
        assert flooded.mean() > 2 * adaptive.mean()

    def test_blank_page_has_no_foreground(self):
        page = np.full((64, 64), 0.9)
        assert not adaptive_threshold(page, radius=4, ratio=0.1).any()

    def test_ratio_monotone(self):
        doc = noisy_document(64, seed=2)
        loose = adaptive_threshold(doc, radius=6, ratio=0.05).mean()
        strict = adaptive_threshold(doc, radius=6, ratio=0.5).mean()
        assert strict <= loose

    def test_default_radius(self):
        doc = noisy_document(64, seed=3)
        out = adaptive_threshold(doc)
        assert out.dtype == bool and out.shape == doc.shape

    def test_invalid_ratio_rejected(self):
        with pytest.raises(ConfigurationError):
            adaptive_threshold(np.zeros((8, 8)), ratio=1.5)

    def test_non_2d_rejected(self):
        with pytest.raises(ConfigurationError):
            adaptive_threshold(np.zeros(8))

    def test_through_sat_algorithm(self):
        doc = noisy_document(64, seed=4)
        a = adaptive_threshold(doc, radius=6, algorithm="1R1W-SKSS-LB")
        b = adaptive_threshold(doc, radius=6)
        assert np.array_equal(a, b)
