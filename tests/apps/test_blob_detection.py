"""SURF-style box-Hessian blob detection."""

import numpy as np
import pytest

from repro.apps.blob_detection import (Blob, detect_blobs, hessian_dxx,
                                       hessian_dxy, hessian_dyy,
                                       hessian_response, non_max_suppress)
from repro.apps.synthetic import gaussian_blobs, gradient_image
from repro.errors import ConfigurationError
from repro.sat import sat_reference


class TestHessianFilters:
    def test_zero_on_constant_image(self):
        sat = sat_reference(np.full((32, 32), 5.0))
        for f in (hessian_dxx, hessian_dyy, hessian_dxy):
            assert np.allclose(f(sat, 3), 0.0)

    def test_zero_on_linear_gradient(self):
        """Second derivatives annihilate affine images (interior region)."""
        sat = sat_reference(gradient_image(48) * 100)
        for f in (hessian_dxx, hessian_dyy, hessian_dxy):
            resp = f(sat, 3)
            assert np.allclose(resp[6:-6, 6:-6], 0.0, atol=1e-8)

    def test_dyy_responds_to_horizontal_bar(self):
        img = np.zeros((48, 48))
        img[22:26, 8:40] = 1.0  # bright horizontal bar
        sat = sat_reference(img)
        dyy = hessian_dyy(sat, 3)
        dxx = hessian_dxx(sat, 3)
        # The bar is a strong -Dyy feature at its centre, weak for Dxx.
        assert abs(dyy[23, 24]) > 4 * abs(dxx[23, 24])
        assert dyy[23, 24] < 0  # bright centre lobe -> negative curvature

    def test_dxx_is_transpose_of_dyy(self, rng):
        img = rng.random((40, 40))
        sat = sat_reference(img)
        sat_t = sat_reference(np.ascontiguousarray(img.T))
        assert np.allclose(hessian_dxx(sat, 3),
                           hessian_dyy(sat_t, 3).T)

    def test_dxy_sign_pattern(self):
        """A bright quadrant pattern (saddle) excites Dxy."""
        img = np.zeros((40, 40))
        img[:20, :20] = 1.0
        img[20:, 20:] = 1.0
        sat = sat_reference(img)
        dxy = hessian_dxy(sat, 3)
        assert abs(dxy[20, 20]) > 0

    def test_even_lobe_rejected(self):
        sat = sat_reference(np.zeros((32, 32)))
        with pytest.raises(ConfigurationError):
            hessian_dyy(sat, 4)

    def test_image_too_small(self):
        sat = sat_reference(np.zeros((6, 6)))
        with pytest.raises(ConfigurationError):
            hessian_dyy(sat, 3)


class TestDetection:
    def test_finds_planted_blob(self):
        img = gaussian_blobs(64, num_blobs=1, seed=3)
        true_i, true_j = np.unravel_index(np.argmax(img), img.shape)
        blobs = detect_blobs(img, threshold=1e-6)
        assert blobs, "no blobs detected"
        best = blobs[0]
        assert abs(best.row - true_i) <= 4 and abs(best.col - true_j) <= 4

    def test_no_blobs_on_flat_image(self):
        assert detect_blobs(np.full((48, 48), 0.5), threshold=1e-6) == []

    def test_sorted_by_response(self):
        img = gaussian_blobs(64, num_blobs=4, seed=1)
        blobs = detect_blobs(img, threshold=1e-7)
        responses = [b.response for b in blobs]
        assert responses == sorted(responses, reverse=True)

    def test_blob_record(self):
        b = Blob(row=3, col=4, lobe=3, response=0.5)
        assert (b.row, b.col, b.lobe) == (3, 4, 3)

    def test_nms_keeps_isolated_peaks(self):
        resp = np.zeros((20, 20))
        resp[5, 5] = 1.0
        resp[15, 15] = 2.0
        peaks = non_max_suppress(resp, threshold=0.5)
        assert {(i, j) for i, j, _ in peaks} == {(5, 5), (15, 15)}

    def test_nms_suppresses_shoulders(self):
        resp = np.zeros((20, 20))
        resp[10, 10] = 2.0
        resp[10, 11] = 1.9  # shoulder of the same peak
        peaks = non_max_suppress(resp, threshold=0.5, radius=2)
        assert [(i, j) for i, j, _ in peaks] == [(10, 10)]

    def test_response_scale_normalization(self):
        """A matched blob responds comparably across neighbouring scales
        (within an order of magnitude) thanks to area normalization."""
        img = gaussian_blobs(64, num_blobs=1, seed=3)
        r3 = np.abs(hessian_response(img, 3)).max()
        r5 = np.abs(hessian_response(img, 5)).max()
        assert 0.05 < r3 / r5 < 20
