"""Box filter: equivalence with direct convolution, edge handling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import box_filter, box_filter_direct, window_areas
from repro.apps.synthetic import gaussian_blobs, gradient_image
from repro.errors import ConfigurationError
from repro.gpusim import GPU


class TestBoxFilter:
    def test_matches_direct_convolution(self):
        img = gaussian_blobs(40, seed=1)
        for radius in (0, 1, 3, 7):
            assert np.allclose(box_filter(img, radius),
                               box_filter_direct(img, radius)), radius

    def test_radius_zero_is_identity(self):
        img = gradient_image(16)
        assert np.allclose(box_filter(img, 0), img)

    def test_constant_image_unchanged(self):
        img = np.full((24, 24), 3.5)
        assert np.allclose(box_filter(img, 5), img)

    def test_huge_radius_gives_global_mean(self):
        img = gaussian_blobs(16, seed=2)
        out = box_filter(img, 100)
        assert np.allclose(out, img.mean())

    def test_smooths_variance(self):
        rng = np.random.default_rng(0)
        img = rng.normal(size=(64, 64))
        assert box_filter(img, 4).var() < img.var() / 4

    def test_negative_radius_rejected(self):
        with pytest.raises(ConfigurationError):
            box_filter(np.zeros((8, 8)), -1)

    def test_non_2d_rejected(self):
        with pytest.raises(ConfigurationError):
            box_filter(np.zeros(8), 1)

    def test_window_areas_corners(self):
        areas = window_areas(10, 10, 2)
        assert areas[0, 0] == 9      # 3x3 clamped corner
        assert areas[5, 5] == 25     # full 5x5 interior
        assert areas[0, 5] == 15     # 3x5 edge

    def test_with_simulated_sat_algorithm(self):
        """End-to-end: blur through the paper's algorithm on the simulator."""
        img = gaussian_blobs(64, seed=3)
        via_sim = box_filter(img, 2, algorithm="skss-lb", gpu=GPU(seed=1))
        assert np.allclose(via_sim, box_filter_direct(img, 2))

    def test_with_host_algorithm(self):
        img = gaussian_blobs(64, seed=4)
        via_host = box_filter(img, 3, algorithm="2r1w")
        assert np.allclose(via_host, box_filter_direct(img, 3))

    @settings(deadline=None, max_examples=15)
    @given(n=st.integers(4, 24), radius=st.integers(0, 6),
           seed=st.integers(0, 1000))
    def test_property_mean_preserving_bounds(self, n, radius, seed):
        """A mean filter's output stays within [min, max] of the input."""
        rng = np.random.default_rng(seed)
        img = rng.normal(size=(n, n))
        out = box_filter(img, radius)
        assert out.min() >= img.min() - 1e-9
        assert out.max() <= img.max() + 1e-9
