"""Mini Viola–Jones cascade on integral images."""

import numpy as np
import pytest

from repro.apps.cascade import (CascadeStage, ContrastTest,
                                bright_square_cascade, detect, squares_scene)
from repro.errors import ConfigurationError


class TestContrastTest:
    def test_passes_on_bright_centre(self):
        from repro.sat.integral import integral_image
        img = np.zeros((16, 16))
        img[4:12, 4:12] = 1.0
        ii = integral_image(img)
        test = ContrastTest(inner=(4, 4, 11, 11), outer=(0, 0, 15, 15),
                            threshold=0.2)
        assert test.evaluate(ii, np.array([0]), np.array([0]))[0]

    def test_fails_on_flat(self):
        from repro.sat.integral import integral_image
        ii = integral_image(np.full((16, 16), 0.5))
        test = ContrastTest(inner=(4, 4, 11, 11), outer=(0, 0, 15, 15),
                            threshold=0.1)
        assert not test.evaluate(ii, np.array([0]), np.array([0]))[0]

    def test_vectorised_anchors(self):
        from repro.sat.integral import integral_image
        img = np.zeros((32, 32))
        img[4:12, 4:12] = 1.0  # object only at anchor (0, 0)
        ii = integral_image(img)
        test = ContrastTest(inner=(4, 4, 11, 11), outer=(0, 0, 15, 15),
                            threshold=0.2)
        out = test.evaluate(ii, np.array([0, 16]), np.array([0, 16]))
        assert out.tolist() == [True, False]


class TestCascade:
    def test_finds_all_planted_squares(self):
        img, corners = squares_scene(128, num_squares=3, square=14, seed=2)
        dets, _ = detect(img, window=16)
        for (r, c) in corners:
            assert any(abs(d.row - r) <= 6 and abs(d.col - c) <= 6
                       for d in dets), (r, c)

    def test_no_detections_on_background(self):
        img, _ = squares_scene(96, num_squares=0, seed=1)
        dets, _ = detect(img, window=16)
        assert dets == []

    def test_early_rejection_dominates(self):
        """The point of a cascade: stage 1 kills the vast majority."""
        img, _ = squares_scene(128, num_squares=2, seed=3)
        _, stats = detect(img, window=16)
        assert stats.early_reject_fraction > 0.9
        assert stats.survivors_per_stage[-1] <= stats.survivors_per_stage[0]

    def test_stage2_rejects_gradient_distractors(self):
        """A pure bright edge passes the centre-vs-frame test but fails the
        four-quadrant stage."""
        img = np.full((64, 64), 0.2)
        img[:, 32:] = 0.9  # hard vertical edge, no square
        dets, stats = detect(img, window=16)
        assert dets == []

    def test_nms_one_box_per_object(self):
        img, corners = squares_scene(96, num_squares=1, square=14, seed=5)
        dets, _ = detect(img, window=16, stride=1)
        assert len(dets) == 1

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            detect(np.zeros((8, 8)), window=16)
        with pytest.raises(ConfigurationError):
            detect(np.zeros(8))
        with pytest.raises(ConfigurationError):
            bright_square_cascade(4)

    def test_custom_cascade(self):
        img, _ = squares_scene(64, num_squares=1, square=14, seed=7)
        always = CascadeStage((ContrastTest((0, 0, 15, 15), (0, 0, 15, 15),
                                            -1.0),), 1)
        dets, stats = detect(img, window=16, cascade=[always], stride=8)
        # A pass-everything stage keeps every window; NMS then prunes.
        assert stats.survivors_per_stage[0] == stats.windows_total
        assert len(dets) >= 1


class TestScene:
    def test_corners_returned_match_squares(self):
        img, corners = squares_scene(96, num_squares=2, square=10, seed=9)
        for (r, c) in corners:
            inner = img[r:r + 10, c:c + 10].mean()
            around = img.mean()
            assert inner > around + 0.2

    def test_deterministic(self):
        a, ca = squares_scene(64, seed=4)
        b, cb = squares_scene(64, seed=4)
        assert np.array_equal(a, b) and ca == cb
