"""Haar-like features over the integral image."""

import numpy as np
import pytest

from repro.apps import (KINDS, HaarFeature, evaluate_feature,
                        evaluate_feature_dense, feature_bank)
from repro.apps.synthetic import checkerboard, gradient_image
from repro.errors import ConfigurationError
from repro.sat import sat_reference


class TestHaarFeature:
    def test_invalid_kind(self):
        with pytest.raises(ConfigurationError):
            HaarFeature("five", 0, 0, 2, 2)

    def test_empty_cell(self):
        with pytest.raises(ConfigurationError):
            HaarFeature("two_h", 0, 0, 0, 2)

    def test_spans(self):
        assert HaarFeature("two_h", 0, 0, 3, 4).span == (3, 8)
        assert HaarFeature("two_v", 0, 0, 3, 4).span == (6, 4)
        assert HaarFeature("three_h", 0, 0, 3, 4).span == (3, 12)
        assert HaarFeature("three_v", 0, 0, 3, 4).span == (9, 4)
        assert HaarFeature("four", 0, 0, 3, 4).span == (6, 8)

    def test_cell_weights_cancel_on_constant(self):
        """Every Haar feature has zero response on a constant image."""
        img = np.full((32, 32), 5.0)
        sat = sat_reference(img)
        for kind in KINDS:
            f = HaarFeature(kind, 3, 4, 3, 3)
            assert evaluate_feature(sat, f) == pytest.approx(0.0)

    def test_two_h_detects_vertical_edge(self):
        img = np.zeros((16, 16))
        img[:, 8:] = 1.0
        sat = sat_reference(img)
        # Feature straddling the edge: right cell minus... left(+1), right(-1).
        f = HaarFeature("two_h", 4, 4, 4, 4)
        assert evaluate_feature(sat, f) == pytest.approx(-16.0)
        # Away from the edge: zero.
        f2 = HaarFeature("two_h", 4, 0, 4, 2)
        assert evaluate_feature(sat, f2) == pytest.approx(0.0)

    def test_matches_manual_sum(self):
        rng = np.random.default_rng(1)
        img = rng.integers(0, 10, size=(20, 20)).astype(float)
        sat = sat_reference(img)
        f = HaarFeature("four", 2, 3, 4, 5)
        manual = (img[2:6, 3:8].sum() - img[2:6, 8:13].sum()
                  - img[6:10, 3:8].sum() + img[6:10, 8:13].sum())
        assert evaluate_feature(sat, f) == pytest.approx(manual)

    def test_out_of_bounds_rejected(self):
        sat = sat_reference(np.zeros((10, 10)))
        with pytest.raises(ConfigurationError):
            evaluate_feature(sat, HaarFeature("two_h", 8, 8, 4, 4))


class TestDenseEvaluation:
    def test_shape(self):
        sat = sat_reference(gradient_image(32))
        out = evaluate_feature_dense(sat, "two_v", 3, 5)
        assert out.shape == (32 - 6 + 1, 32 - 5 + 1)

    def test_matches_pointwise(self):
        rng = np.random.default_rng(2)
        img = rng.integers(0, 9, size=(18, 18)).astype(float)
        sat = sat_reference(img)
        dense = evaluate_feature_dense(sat, "three_h", 2, 3)
        for (t, l) in ((0, 0), (3, 4), (16, 9)):
            f = HaarFeature("three_h", t, l, 2, 3)
            assert dense[t, l] == pytest.approx(evaluate_feature(sat, f))

    def test_checkerboard_periodicity(self):
        """On a checkerboard, a cell-aligned two-rect feature alternates sign
        with the board period."""
        img = checkerboard(32, cell=4)
        sat = sat_reference(img)
        dense = evaluate_feature_dense(sat, "two_h", 4, 4)
        assert dense[0, 0] == pytest.approx(-dense[0, 4])

    def test_feature_too_large(self):
        sat = sat_reference(np.zeros((8, 8)))
        with pytest.raises(ConfigurationError):
            evaluate_feature_dense(sat, "two_h", 8, 8)


class TestFeatureBank:
    def test_all_valid(self):
        img = gradient_image(40)
        sat = sat_reference(img)
        for f in feature_bank(40, seed=3, count=100):
            evaluate_feature(sat, f)  # no exception

    def test_deterministic(self):
        assert feature_bank(32, seed=5, count=10) == \
            feature_bank(32, seed=5, count=10)

    def test_count(self):
        assert len(feature_bank(64, seed=1, count=37)) == 37
