"""Synthetic scene generators."""

import numpy as np
import pytest

from repro.apps.synthetic import (checkerboard, diag_dust, exponent_spread,
                                  gaussian_blobs, gradient_image,
                                  halfulp_dust, noisy_document,
                                  sign_alternating, texture)
from repro.errors import ConfigurationError


class TestGenerators:
    @pytest.mark.parametrize("gen", [gradient_image, noisy_document,
                                     lambda n: gaussian_blobs(n, seed=0),
                                     lambda n: texture(n, seed=0),
                                     checkerboard])
    def test_shapes(self, gen):
        assert gen(32).shape == (32, 32)

    def test_gradient_range(self):
        g = gradient_image(64)
        assert g[0, 0] == 0.0 and g[-1, -1] == 1.0
        assert (np.diff(g, axis=0) >= 0).all()

    def test_checkerboard_alternates(self):
        cb = checkerboard(16, cell=4)
        assert cb[0, 0] != cb[0, 4]
        assert cb[0, 0] == cb[4, 4]
        assert set(np.unique(cb)) == {0.0, 1.0}

    def test_checkerboard_invalid_cell(self):
        with pytest.raises(ConfigurationError):
            checkerboard(16, cell=0)

    def test_gradient_invalid_size(self):
        with pytest.raises(ConfigurationError):
            gradient_image(0)

    def test_blobs_nonnegative_and_seeded(self):
        a = gaussian_blobs(32, seed=3)
        b = gaussian_blobs(32, seed=3)
        c = gaussian_blobs(32, seed=4)
        assert (a >= 0).all()
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_document_has_illumination_gradient(self):
        doc = noisy_document(96, seed=1)
        assert doc[:, 64:].mean() > doc[:, :32].mean()
        assert 0.0 <= doc.min() and doc.max() <= 1.0

    def test_texture_normalized(self):
        t = texture(48, seed=2)
        assert t.min() == pytest.approx(0.0)
        assert t.max() == pytest.approx(1.0)


class TestAdversarialGenerators:
    """The numcheck probe families (see repro.analysis.numcheck)."""

    @pytest.mark.parametrize("gen", [sign_alternating, exponent_spread,
                                     halfulp_dust, diag_dust])
    def test_shapes_and_determinism(self, gen):
        a = gen((24, 40), seed=3)
        assert a.shape == (24, 40)
        assert np.array_equal(a, gen((24, 40), seed=3))

    def test_sign_alternating_cancels(self):
        """Adjacent signs alternate, so the SAT stays far below the
        absolute mass — the regime where result-relative tolerances
        misjudge healthy results."""
        a = sign_alternating(64, seed=1)
        assert (np.sign(a[:-1, :]) == -np.sign(a[1:, :])).all()
        assert abs(a.sum()) < 0.1 * np.abs(a).sum()

    def test_exponent_spread_is_positive_and_wide(self):
        a = exponent_spread(64, seed=2, span=24)
        assert (a > 0).all()
        assert a.max() / a.min() > 2.0**40

    def test_halfulp_dust_rounds_away(self):
        """Each dust grain is below half an ulp of the dominant 1.0, so a
        running float32 sum that starts at the dominant absorbs nothing."""
        a = halfulp_dust(32, dtype=np.float32, seed=0)
        assert a[0, 0] == 1.0
        rest = np.delete(a.ravel(), 0)
        eps32 = np.finfo(np.float32).eps
        assert (0 < rest).all() and (rest < 0.5 * eps32).all()
        acc = np.float32(1.0)
        for v in rest[:100]:
            acc = np.float32(acc + np.float32(v))
        assert acc == np.float32(1.0)

    def test_diag_dust_off_diagonal_tiles_are_zero(self):
        """Only diagonal-tile edges carry dust: every wavefront boundary
        carry outside the diagonal stays exactly 0.0, which is what lets
        the probe drive the O(t*W) gs chain."""
        a = diag_dust(128, tile=32, dtype=np.float64, seed=0)
        assert a[0, 0] == 1.0
        for bi in range(4):
            for bj in range(4):
                block = a[bi * 32:(bi + 1) * 32, bj * 32:(bj + 1) * 32]
                if bi != bj:
                    assert not block.any()
        assert np.count_nonzero(a) > 4 * 32

    def test_diag_dust_invalid_tile(self):
        with pytest.raises(ConfigurationError):
            diag_dust(64, tile=0)
