"""Synthetic scene generators."""

import numpy as np
import pytest

from repro.apps.synthetic import (checkerboard, gaussian_blobs, gradient_image,
                                  noisy_document, texture)
from repro.errors import ConfigurationError


class TestGenerators:
    @pytest.mark.parametrize("gen", [gradient_image, noisy_document,
                                     lambda n: gaussian_blobs(n, seed=0),
                                     lambda n: texture(n, seed=0),
                                     checkerboard])
    def test_shapes(self, gen):
        assert gen(32).shape == (32, 32)

    def test_gradient_range(self):
        g = gradient_image(64)
        assert g[0, 0] == 0.0 and g[-1, -1] == 1.0
        assert (np.diff(g, axis=0) >= 0).all()

    def test_checkerboard_alternates(self):
        cb = checkerboard(16, cell=4)
        assert cb[0, 0] != cb[0, 4]
        assert cb[0, 0] == cb[4, 4]
        assert set(np.unique(cb)) == {0.0, 1.0}

    def test_checkerboard_invalid_cell(self):
        with pytest.raises(ConfigurationError):
            checkerboard(16, cell=0)

    def test_gradient_invalid_size(self):
        with pytest.raises(ConfigurationError):
            gradient_image(0)

    def test_blobs_nonnegative_and_seeded(self):
        a = gaussian_blobs(32, seed=3)
        b = gaussian_blobs(32, seed=3)
        c = gaussian_blobs(32, seed=4)
        assert (a >= 0).all()
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_document_has_illumination_gradient(self):
        doc = noisy_document(96, seed=1)
        assert doc[:, 64:].mean() > doc[:, :32].mean()
        assert 0.0 <= doc.min() and doc.max() <= 1.0

    def test_texture_normalized(self):
        t = texture(48, seed=2)
        assert t.min() == pytest.approx(0.0)
        assert t.max() == pytest.approx(1.0)
