"""NCC template matching via integral images."""

import numpy as np
import pytest

from repro.apps.template_match import best_match, ncc_match, window_stats
from repro.errors import ConfigurationError


class TestWindowStats:
    def test_matches_direct_windows(self, rng):
        img = rng.random((20, 24))
        s, sq = window_stats(img, 5, 7)
        assert s.shape == (16, 18)
        for i, j in ((0, 0), (3, 9), (15, 17)):
            win = img[i:i + 5, j:j + 7]
            assert s[i, j] == pytest.approx(win.sum())
            assert sq[i, j] == pytest.approx((win * win).sum())

    def test_full_image_window(self, rng):
        img = rng.random((8, 8))
        s, sq = window_stats(img, 8, 8)
        assert s.shape == (1, 1)
        assert s[0, 0] == pytest.approx(img.sum())

    def test_oversized_template_rejected(self):
        with pytest.raises(ConfigurationError):
            window_stats(np.zeros((4, 4)), 5, 2)


class TestNCC:
    def test_exact_match_scores_one(self, rng):
        scene = rng.random((40, 40))
        tmpl = scene[12:20, 25:35].copy()
        i, j, score = best_match(scene, tmpl)
        assert (i, j) == (12, 25)
        assert score == pytest.approx(1.0, abs=1e-9)

    def test_invariant_to_brightness_and_contrast(self, rng):
        """NCC is invariant to affine intensity changes of the scene window."""
        scene = rng.random((32, 32))
        tmpl = scene[5:15, 5:15].copy()
        transformed = scene * 3.7 + 11.0
        i, j, score = best_match(transformed, tmpl)
        assert (i, j) == (5, 5)
        assert score == pytest.approx(1.0, abs=1e-9)

    def test_negated_template_scores_minus_one(self, rng):
        scene = rng.random((24, 24))
        tmpl = -scene[4:12, 6:16].copy()
        ncc = ncc_match(scene, tmpl)
        assert ncc[4, 6] == pytest.approx(-1.0, abs=1e-9)

    def test_scores_bounded(self, rng):
        scene = rng.random((30, 30))
        tmpl = rng.random((6, 9))
        ncc = ncc_match(scene, tmpl)
        assert (ncc <= 1.0 + 1e-12).all() and (ncc >= -1.0 - 1e-12).all()

    def test_constant_window_scores_zero(self):
        scene = np.zeros((16, 16))
        scene[8:, :] = 1.0
        tmpl = np.array([[0.0, 1.0], [1.0, 0.0]])
        ncc = ncc_match(scene, tmpl)
        assert ncc[0, 0] == 0.0  # flat region: zero variance window

    def test_non_2d_rejected(self):
        with pytest.raises(ConfigurationError):
            ncc_match(np.zeros(8), np.zeros((2, 2)))
