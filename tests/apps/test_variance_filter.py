"""Local moments via two SATs (variance shadow maps)."""

import numpy as np
import pytest

from repro.apps import (chebyshev_upper_bound, local_contrast_normalize,
                        local_moments)
from repro.apps.synthetic import gaussian_blobs, texture
from repro.errors import ConfigurationError


class TestLocalMoments:
    def test_matches_direct_windows(self):
        img = gaussian_blobs(32, seed=1)
        mean, var = local_moments(img, 3)
        for i, j in ((0, 0), (5, 17), (31, 31), (16, 2)):
            win = img[max(0, i - 3):i + 4, max(0, j - 3):j + 4]
            assert mean[i, j] == pytest.approx(win.mean())
            assert var[i, j] == pytest.approx(win.var(), abs=1e-9)

    def test_variance_nonnegative(self):
        img = texture(48, seed=2) * 1000
        _, var = local_moments(img, 5)
        assert (var >= 0).all()

    def test_constant_image_zero_variance(self):
        img = np.full((24, 24), 7.0)
        mean, var = local_moments(img, 4)
        assert np.allclose(mean, 7.0)
        assert np.allclose(var, 0.0, atol=1e-9)

    def test_invalid_radius(self):
        with pytest.raises(ConfigurationError):
            local_moments(np.zeros((8, 8)), -2)

    def test_through_sat_algorithm(self):
        img = gaussian_blobs(64, seed=3)
        m1, v1 = local_moments(img, 2, algorithm="skss-lb")
        m2, v2 = local_moments(img, 2)
        assert np.allclose(m1, m2) and np.allclose(v1, v2)


class TestChebyshev:
    def test_below_mean_fully_visible(self):
        p = chebyshev_upper_bound(np.array([5.0]), np.array([1.0]), 4.0)
        assert p[0] == 1.0

    def test_above_mean_bounded(self):
        p = chebyshev_upper_bound(np.array([0.0]), np.array([1.0]), 2.0)
        assert p[0] == pytest.approx(1.0 / 5.0)

    def test_zero_variance_above_mean(self):
        p = chebyshev_upper_bound(np.array([0.0]), np.array([0.0]), 1.0)
        assert p[0] == 0.0

    def test_shrinks_with_distance(self):
        mean = np.zeros(3)
        var = np.ones(3)
        p = [chebyshev_upper_bound(mean, var, t)[0] for t in (1.0, 2.0, 4.0)]
        assert p[0] > p[1] > p[2]


class TestContrastNormalize:
    def test_output_standardized_locally(self):
        img = texture(64, seed=4)
        out = local_contrast_normalize(img, 8)
        assert abs(out.mean()) < 0.3
        assert 0.3 < out.std() < 3.0

    def test_removes_global_offset(self):
        img = texture(32, seed=5)
        a = local_contrast_normalize(img, 4)
        b = local_contrast_normalize(img + 100.0, 4)
        assert np.allclose(a, b, atol=1e-6)
