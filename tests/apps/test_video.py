"""Streaming-video analytics on the incremental SAT."""

import numpy as np
import pytest

from repro.apps.box_filter import box_filter
from repro.apps.video import (FrameStats, VideoSAT, process_stream,
                              synthetic_stream)
from repro.errors import ConfigurationError
from repro.sat import sat_reference


class TestSyntheticStream:
    def test_deterministic_and_sparse_diffs(self):
        f1 = list(synthetic_stream(64, frames=4, block=8, step=4, seed=3))
        f2 = list(synthetic_stream(64, frames=4, block=8, step=4, seed=3))
        assert len(f1) == 4
        for a, b in zip(f1, f2):
            assert np.array_equal(a, b)
        # consecutive frames differ on at most two block-sized patches
        changed = np.count_nonzero(f1[0] != f1[1])
        assert 0 < changed <= 2 * 8 * 8

    def test_rectangular_and_errors(self):
        frames = list(synthetic_stream((40, 72), frames=2, block=8))
        assert frames[0].shape == (40, 72)
        with pytest.raises(ConfigurationError):
            list(synthetic_stream(16, frames=1, block=32))


class TestVideoSAT:
    def test_stats_match_direct_computation(self):
        frames = list(synthetic_stream(96, frames=5, block=16, step=8))
        rois = [(0, 0, 31, 31), (40, 40, 95, 80)]
        stats = process_stream(frames, rois=rois, tile_width=32)
        assert len(stats) == len(frames)
        for s, frame in zip(stats, frames):
            assert isinstance(s, FrameStats)
            assert s.mean == pytest.approx(frame.mean())
            for (r0, c0, r1, c1), got in zip(rois, s.roi_sums):
                assert got == frame[r0:r1 + 1, c0:c1 + 1].sum()
        # after the first (full-build) frame, repair stays partial
        assert all(s.repaired_fraction <= 1.0 for s in stats)
        assert stats[0].repaired_tiles == stats[0].total_tiles

    def test_sat_stays_bit_identical_across_stream(self):
        frames = list(synthetic_stream((80, 112), frames=4, block=12, step=6))
        with VideoSAT(frames[0], tile_width=32) as video:
            for frame in frames:
                video.process(frame)
                assert np.array_equal(
                    video.sat, sat_reference(frame.astype(video.engine.dtype)))

    def test_box_filter_matches_batch_path(self):
        frames = list(synthetic_stream(64, frames=2, block=8))
        with VideoSAT(frames[0]) as video:
            video.process(frames[0])
            video.process(frames[1])
            want = box_filter(frames[1], 3)
            assert np.allclose(video.box_filter(3), want)

    def test_roi_validation(self):
        frame = next(synthetic_stream(32, frames=1, block=4))
        with pytest.raises(ConfigurationError):
            VideoSAT(frame, rois=[(0, 0, 32, 10)])

    def test_empty_stream(self):
        assert process_stream([]) == []
