"""Fixtures for the backend conformance suite.

Every test parameterized over the ``backend`` fixture runs against the FULL
unified registry (:func:`repro.backend.registry.known_backends`), so
registering a new backend automatically puts it under conformance — there is
no second list to keep in sync.

The helpers encode the two per-backend knobs the suite needs:

* tile width — the simulator's warp collectives need whole 32-lane warps,
  every host backend is exercised at the smaller W=16 (more ragged edges per
  matrix);
* shape — the simulator pays per executed instruction, so its matrices stay
  small (still ragged: partial edge tiles on both axes).
"""

import numpy as np
import pytest

from repro.backend.registry import get_backend, known_backends


@pytest.fixture(params=known_backends())
def backend_name(request):
    return request.param


@pytest.fixture
def backend(backend_name):
    return get_backend(backend_name)


@pytest.fixture
def spec(backend):
    return backend.spec


@pytest.fixture
def W(spec):
    """Smallest legal tile width for this backend."""
    return 32 if spec.kind == "device" else 16


@pytest.fixture
def shape(spec, W):
    """A ragged rectangle (partial edge tiles on both axes)."""
    return (W + 5, W - 9) if spec.kind == "device" else (3 * W + 5, 2 * W + 6)


@pytest.fixture
def make_matrix():
    """Deterministic random test matrices in any dtype."""
    def make(shape, dtype, seed=7):
        rng = np.random.default_rng(seed)
        dt = np.dtype(dtype)
        if np.issubdtype(dt, np.floating):
            return (rng.random(shape) * 100).astype(dt)
        return rng.integers(0, 100, size=shape).astype(dt)
    return make


@pytest.fixture
def assert_matches():
    """Spec-driven result comparison, same contract as the fuzzer's.

    ``bit_identical`` backends (and every backend on integer accumulators)
    must match exactly; float results from reduction-reordering backends are
    held to the statically proven rounding budget
    (:func:`repro.analysis.tolerances.derived_tolerance`, worst case over
    the Table I algorithms — both legs of the comparison accumulate, hence
    ``oracle="host"``).
    """
    from repro.analysis.tolerances import assert_sat_close, derived_tolerance

    def check(spec, got, want):
        assert got.shape == want.shape
        assert got.dtype == want.dtype
        if spec.bit_identical or np.issubdtype(got.dtype, np.integer):
            np.testing.assert_array_equal(got, want)
        else:
            tol = derived_tolerance(None, got.shape, got.dtype,
                                    tile_width=16, oracle="host")
            assert_sat_close(got, want, tol,
                             context=f"backend '{spec.name}'")
    return check
