"""Retained-state round-trips: carry planes against their algebraic oracles.

Backends declaring ``retains_state`` return a typed
:class:`~repro.backend.carries.CarrySet` from ``execute_with_carries``:

* the wavefront backend's :class:`TileCarrySet` holds the Table II planes,
  checked here against the region-sum oracle definitions in
  :mod:`repro.primitives.tile` (exact — integer accumulators);
* the outofcore backend's :class:`BandCarrySet` holds the accumulated column
  sums whose prefix scan stitches bands — after a full pass they equal the
  total per-column sums (the same algebra one level up);
* every other backend refuses with the canonical ConfigurationError.
"""

import numpy as np
import pytest

from repro.backend.carries import BandCarrySet, TileCarrySet
from repro.backend.plan import prepare_input
from repro.backend.registry import get_backend, get_spec, known_backends
from repro.errors import ConfigurationError
from repro.primitives.tile import (global_col_prefixes, global_col_sums,
                                   global_row_sums, global_sum)


def matrix(shape, seed=11):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 100, size=shape).astype(np.int64)


class TestWavefrontCarries:
    @pytest.mark.parametrize("algorithm", ["2R1W", "1R1W", "(1+r)R1W",
                                           "1R1W-SKSS", "1R1W-SKSS-LB"])
    def test_planes_match_table2_oracles(self, algorithm):
        backend = get_backend("wavefront")
        a = matrix((53, 38))
        plan = backend.plan(a.shape, a.dtype, algorithm=algorithm,
                            tile_width=16)
        sat, carries = backend.execute_with_carries(plan, a)
        # the sat half of the round-trip is the plain execute result
        np.testing.assert_array_equal(sat, backend.execute(plan, a))
        assert isinstance(carries, TileCarrySet)
        assert carries.dtype == plan.acc_dtype
        grid = plan.grid
        assert (carries.tile_rows, carries.tile_cols) \
            == (grid.tile_rows, grid.tile_cols)
        work, _ = prepare_input(a, acc_dtype=plan.acc_dtype, grid=grid)
        planes = carries.planes()
        assert carries.roles() == tuple(planes)
        for I in range(grid.tile_rows):
            for J in range(grid.tile_cols):
                np.testing.assert_array_equal(
                    planes["GRS"][I, J], global_row_sums(work, grid, I, J))
                if "GCP" in planes:     # the SKSS dataflow
                    np.testing.assert_array_equal(
                        planes["GCP"][I, J],
                        global_col_prefixes(work, grid, I, J))
                else:                   # the look-back family
                    np.testing.assert_array_equal(
                        planes["GCS"][I, J],
                        global_col_sums(work, grid, I, J))
                    assert planes["GS"][I, J] == global_sum(work, grid, I, J)

    def test_carries_are_private_copies(self):
        """Mutating a returned plane must not corrupt later computations."""
        backend = get_backend("wavefront")
        a = matrix((48, 32))
        plan = backend.plan(a.shape, a.dtype, algorithm="1R1W-SKSS-LB",
                            tile_width=16)
        want = backend.execute(plan, a)
        _, carries = backend.execute_with_carries(plan, a)
        for plane in carries.planes().values():
            plane[...] = -1
        np.testing.assert_array_equal(backend.execute(plan, a), want)


class TestBandCarries:
    def test_column_sums_after_full_pass(self):
        backend = get_backend("outofcore")
        a = matrix((53, 38))
        plan = backend.plan(a.shape, a.dtype, band_rows=7, tile_width=16)
        sat, carries = backend.execute_with_carries(plan, a)
        np.testing.assert_array_equal(sat, backend.execute(plan, a))
        assert isinstance(carries, BandCarrySet)
        assert carries.dtype == plan.acc_dtype
        assert carries.roles() == ("BCS",)
        np.testing.assert_array_equal(
            carries.planes()["BCS"],
            a.sum(axis=0, dtype=plan.acc_dtype))

    def test_with_tile_algorithm_per_band(self):
        backend = get_backend("outofcore")
        a = matrix((40, 24), seed=3)
        plan = backend.plan(a.shape, a.dtype, algorithm="1R1W-SKSS",
                            tile_width=16, band_rows=18)
        sat, carries = backend.execute_with_carries(plan, a)
        ref = a.astype(plan.acc_dtype).cumsum(axis=0).cumsum(axis=1)
        np.testing.assert_array_equal(sat, ref)
        np.testing.assert_array_equal(carries.planes()["BCS"],
                                      a.sum(axis=0, dtype=plan.acc_dtype))


class TestDistributedCarries:
    def test_column_sums_after_sharded_pass(self):
        """The distributed backend speaks the same band-carry algebra as the
        outofcore one: after a full sharded pass the BandCarrySet holds the
        total per-column sums."""
        backend = get_backend("distributed")
        a = matrix((53, 38), seed=5)
        plan = backend.plan(a.shape, a.dtype, algorithm="1R1W-SKSS-LB",
                            tile_width=16, shards=3)
        sat, carries = backend.execute_with_carries(plan, a)
        np.testing.assert_array_equal(sat, backend.execute(plan, a))
        assert isinstance(carries, BandCarrySet)
        assert carries.dtype == plan.acc_dtype
        assert carries.roles() == ("BCS",)
        np.testing.assert_array_equal(
            carries.planes()["BCS"], a.sum(axis=0, dtype=plan.acc_dtype))


@pytest.mark.parametrize("name", [n for n in known_backends()
                                  if not get_spec(n).retains_state])
def test_non_retaining_backends_refuse(name):
    backend = get_backend(name)
    W = 32 if backend.spec.kind == "device" else 16
    plan = backend.plan((32, 32), "int32", tile_width=W)
    with pytest.raises(ConfigurationError,
                       match="does not retain carry state"):
        backend.execute_with_carries(plan, np.zeros((32, 32), np.int32))
