"""Conformance: every registered backend, one contract.

The core promise of the unified :mod:`repro.backend` protocol: any backend,
asked for any (algorithm, dtype, ragged shape) combination it declares
support for, produces the serial oracle's summed area table — exactly for
``bit_identical`` specs and integer accumulators, within an
accumulation-depth tolerance otherwise — honours ``out=`` uniformly, and
returns frozen, reusable plans.

Adding a backend to the registry automatically subjects it to this suite
(the ``backend`` fixture parameterizes over ``known_backends()``).
"""

import dataclasses

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sat.registry import get_algorithm

# compiled degrades to wavefront without Numba, with a one-time warning.
pytestmark = pytest.mark.filterwarnings("ignore::RuntimeWarning")

ALGORITHMS = ("2R2W", "2R2W-optimal", "2R1W", "1R1W", "(1+r)R1W",
              "1R1W-SKSS", "1R1W-SKSS-LB")
DTYPES = ("int32", "float64")


def test_parametrization_covers_registry(request):
    """Drift pin: the ``backend_name`` fixture that parameterizes this whole
    suite must enumerate exactly ``known_backends()`` — a future backend
    cannot be registered without landing under conformance."""
    from repro.backend.registry import known_backends
    fixturedef = request.session._fixturemanager.getfixturedefs(
        "backend_name", request.node)[-1]
    assert tuple(fixturedef.params) == known_backends()


@pytest.mark.parametrize("dtype", DTYPES)
@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_matches_serial_oracle(backend, spec, W, shape, make_matrix,
                               assert_matches, algorithm, dtype):
    if not spec.supports_algorithm(algorithm):
        pytest.skip(f"{spec.name} does not execute {algorithm}")
    a = make_matrix(shape, dtype)
    got = backend.compute(a, algorithm=algorithm, tile_width=W)
    if spec.algorithm_agnostic:
        want = a.astype(got.dtype, copy=False).cumsum(axis=0).cumsum(axis=1)
    else:
        want = get_algorithm(algorithm, tile_width=W).run_host(a)
    assert_matches(spec, got, want)


def test_default_algorithm(backend, spec, W, shape, make_matrix,
                           assert_matches):
    """``algorithm=None`` means the spec's default (or the plain scan)."""
    a = make_matrix(shape, "int32")
    got = backend.compute(a, tile_width=W)
    want = a.astype(got.dtype, copy=False).cumsum(axis=0).cumsum(axis=1)
    assert_matches(spec, got, want)


def test_aligned_shape(backend, spec, W, make_matrix, assert_matches):
    """Tile-aligned matrices (no ragged padding path) work identically."""
    a = make_matrix((W, 2 * W), "int32", seed=3)
    got = backend.compute(a, tile_width=W)
    want = a.astype(got.dtype, copy=False).cumsum(axis=0).cumsum(axis=1)
    assert_matches(spec, got, want)


def test_input_never_modified(backend, W, shape, make_matrix):
    a = make_matrix(shape, "float64")
    snapshot = a.copy()
    sat = backend.compute(a, tile_width=W)
    assert np.array_equal(a, snapshot)
    assert sat is not a


class TestOutParameter:
    def test_out_receives_result(self, backend, W, shape, make_matrix):
        a = make_matrix(shape, "int32")
        plan = backend.plan(a.shape, a.dtype, tile_width=W)
        out = np.empty(shape, dtype=plan.acc_dtype)
        result = backend.execute(plan, a, out=out)
        assert result is out
        np.testing.assert_array_equal(out, backend.execute(plan, a))

    def test_out_also_via_compute(self, backend, W, shape, make_matrix):
        a = make_matrix(shape, "int32")
        plan = backend.plan(a.shape, a.dtype, tile_width=W)
        out = np.empty(shape, dtype=plan.acc_dtype)
        result = backend.compute(a, tile_width=W, out=out)
        assert result is out


class TestPlans:
    def test_plan_is_frozen(self, backend, W, shape):
        plan = backend.plan(shape, "int32", tile_width=W)
        with pytest.raises(dataclasses.FrozenInstanceError):
            plan.rows = 1

    def test_plan_is_reusable_and_deterministic(self, backend, W, shape,
                                                make_matrix):
        a = make_matrix(shape, "float64")
        plan = backend.plan(a.shape, a.dtype, tile_width=W)
        first = backend.execute(plan, a)
        second = backend.execute(plan, a)
        np.testing.assert_array_equal(first, second)

    def test_plan_describe_is_stable_json(self, backend, spec, W, shape):
        plan = backend.plan(shape, "int32", tile_width=W)
        d = plan.describe()
        assert d["backend"] == spec.name
        assert (d["rows"], d["cols"]) == shape
        assert isinstance(d["acc_dtype"], str)

    def test_plan_carries_grid_only_for_tile_dataflows(self, backend, spec,
                                                       W, shape):
        plan = backend.plan(shape, "int32", tile_width=W)
        if plan.algorithm is None or not plan.tile_based:
            assert plan.grid is None
        else:
            assert plan.grid is not None
            assert plan.grid.W == W

    def test_foreign_plan_rejected(self, backend, spec, W, shape,
                                   make_matrix):
        from repro.backend.registry import get_backend, known_backends
        other_name = next(n for n in known_backends() if n != spec.name)
        foreign = get_backend(other_name).plan(shape, "int32",
                                               tile_width=W)
        with pytest.raises(ConfigurationError, match="plan was made for"):
            backend.execute(foreign, make_matrix(shape, "int32"))
