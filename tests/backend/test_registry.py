"""Registry drift pins: one table, every consumer derives from it.

These tests fail if an executor is ever registered (or routed) outside the
unified backend registry: the executor-class table, the legacy hostexec
engine registry, the sat-layer routing surface, the CLI ``--engine``
choices, the fuzzer's sampling pool and every unknown-name error message
must all be derivations of ``repro.backend.registry`` — not second lists.
"""

import json

import numpy as np
import pytest

from repro.backend.registry import (backend_specs, backend_table,
                                    engine_backends, get_backend, get_spec,
                                    known_backends, resolve_backend)
from repro.errors import ConfigurationError


def test_known_backends_exactly():
    assert known_backends() == ("serial", "wavefront", "parallel",
                                "compiled", "gpusim", "outofcore",
                                "distributed")
    assert engine_backends() == ("serial", "wavefront", "parallel",
                                 "compiled", "distributed")


def test_every_executor_class_is_registered():
    """The pin: no executor exists outside the registry, and the registry
    names nothing without an executor."""
    from repro.backend.executors import BACKEND_CLASSES
    assert set(BACKEND_CLASSES) == set(known_backends())
    for name in known_backends():
        assert get_backend(name).spec is get_spec(name)


def test_hostexec_engine_registry_is_a_derivation():
    from repro.hostexec.registry import ENGINES, known_engines
    assert known_engines() == engine_backends()
    for name in known_engines():
        assert ENGINES[name] is get_spec(name)


def test_sat_layer_engine_surface_is_a_derivation():
    from repro.sat.registry import HOST_ENGINES
    assert HOST_ENGINES == engine_backends()


def test_cli_engine_choices_are_a_derivation():
    from repro.cli import _build_parser
    parser = _build_parser()
    subparsers = next(a for a in parser._actions
                      if hasattr(a, "choices") and "run" in (a.choices or {}))
    run = subparsers.choices["run"]
    engine_action = next(a for a in run._actions if a.dest == "engine")
    assert tuple(engine_action.choices) == engine_backends()


def test_fuzz_pool_is_a_derivation():
    from repro.analysis.fuzzing import _engine_fuzz_engines
    assert _engine_fuzz_engines() \
        == tuple(b for b in known_backends() if b != "serial")


def test_unknown_engine_error_lists_the_registry():
    with pytest.raises(ConfigurationError) as exc:
        resolve_backend("turbo")
    message = str(exc.value)
    for name in engine_backends():
        assert name in message
    # non-engine backends are not reachable through engine= routing
    with pytest.raises(ConfigurationError, match="unknown host engine"):
        resolve_backend("gpusim")


def test_unknown_backend_error_lists_the_registry():
    with pytest.raises(ConfigurationError) as exc:
        get_backend("turbo")
    message = str(exc.value)
    for name in known_backends():
        assert name in message


def test_resolve_backend_contract():
    assert resolve_backend(None).spec.name == "serial"
    assert resolve_backend("wavefront").spec.name == "wavefront"
    from repro.hostexec import WavefrontEngine
    with WavefrontEngine(workers=1) as eng:
        adapter = resolve_backend(eng)
        assert adapter.spec is get_spec("wavefront")
        a = np.arange(12, dtype=np.int32).reshape(3, 4)
        np.testing.assert_array_equal(
            adapter.compute(a),
            a.astype(np.int64).cumsum(axis=0).cumsum(axis=1))


def test_backend_table_is_stable_json():
    rows = backend_table()
    assert [r["name"] for r in rows] == list(known_backends())
    keys = {"name", "kind", "summary", "algorithms", "dtypes",
            "bit_identical", "requires", "fallback", "available", "engine",
            "retains_state", "algorithm_agnostic", "default_algorithm"}
    for row in rows:
        assert set(row) == keys
    json.dumps(rows)   # must be JSON-able as-is


def test_capability_flags_pinned():
    specs = backend_specs()
    assert [s.kind for s in specs.values()] \
        == ["host", "host", "host", "host", "device", "streaming",
            "streaming"]
    assert {n for n, s in specs.items() if s.bit_identical} \
        == {"serial", "wavefront", "compiled"}
    assert {n for n, s in specs.items() if s.retains_state} \
        == {"wavefront", "outofcore", "distributed"}
    assert {n for n, s in specs.items() if s.algorithm_agnostic} \
        == {"parallel"}
    assert specs["compiled"].requires == "numba"
    assert specs["compiled"].fallback == "wavefront"
