"""Validation-before-execution: every backend fails fast, the same way.

The plan stage is where ALL configuration errors surface — as
:class:`~repro.errors.ConfigurationError`, before any input element is read
(``plan()`` structurally cannot touch data: it only receives a shape and a
dtype).  Execution checks only data/plan agreement, and rejects mismatches
before dispatching to the executor.
"""

import numpy as np
import pytest

from repro.backend.core import Backend, BackendSpec
from repro.backend.registry import get_backend
from repro.errors import ConfigurationError

pytestmark = pytest.mark.filterwarnings("ignore::RuntimeWarning")


class TestPlanValidation:
    @pytest.mark.parametrize("bad", [0, -3, 2.5, True, "16", None])
    def test_bad_tile_width_rejected(self, backend, bad):
        with pytest.raises(ConfigurationError, match="tile_width"):
            backend.plan((32, 32), "float64", tile_width=bad)

    @pytest.mark.parametrize("bad", [0, -1, 1.5, True, "4"])
    def test_bad_workers_rejected(self, backend, W, bad):
        with pytest.raises(ConfigurationError, match="workers"):
            backend.plan((32, 32), "float64", tile_width=W, workers=bad)

    @pytest.mark.parametrize("bad", [(0, 5), (5, 0), (-2, 5), (3,),
                                     (3, 4, 5), "nope"])
    def test_bad_shape_rejected(self, backend, W, bad):
        with pytest.raises(ConfigurationError):
            backend.plan(bad, "float64", tile_width=W)

    def test_unknown_algorithm_rejected(self, backend, W):
        with pytest.raises(ConfigurationError, match="unknown SAT algorithm"):
            backend.plan((32, 32), "float64", algorithm="no-such",
                         tile_width=W)

    def test_unsupported_algorithm_rejected(self, backend, spec, W):
        if spec.algorithms is None:
            pytest.skip(f"{spec.name} executes every algorithm")
        unsupported = "2R2W"
        assert unsupported not in spec.algorithms
        with pytest.raises(ConfigurationError,
                           match="does not support algorithm"):
            backend.plan((32, 32), "float64", algorithm=unsupported,
                         tile_width=W)

    def test_invalid_dtype_rejected(self, backend, W):
        with pytest.raises(ConfigurationError, match="dtype"):
            backend.plan((32, 32), "no-such-dtype", tile_width=W)

    def test_band_rows_only_on_streaming_backends(self, backend, spec, W):
        if spec.kind == "streaming":
            plan = backend.plan((40, 24), "int32", tile_width=W, band_rows=7)
            assert plan.band_rows == 7
            # omitted band_rows derives a sensible default
            assert backend.plan((40, 24), "int32",
                                tile_width=W).band_rows is not None
            for bad in (0, -2, True, 1.5):
                with pytest.raises(ConfigurationError, match="band_rows"):
                    backend.plan((40, 24), "int32", tile_width=W,
                                 band_rows=bad)
        else:
            with pytest.raises(ConfigurationError, match="band_rows"):
                backend.plan((40, 24), "int32", tile_width=W, band_rows=8)


def test_gpusim_requires_warp_aligned_tiles():
    backend = get_backend("gpusim")
    with pytest.raises(ConfigurationError, match="warp"):
        backend.plan((32, 32), "float64", algorithm="1R1W-SKSS",
                     tile_width=16)
    # non-tile dataflows don't care about the warp width
    plan = backend.plan((16, 16), "float64", algorithm="2R2W", tile_width=16)
    assert plan.grid is None


def test_unsupported_dtype_rejected_by_the_protocol():
    """The spec's dtype capability gate is enforced by the shared plan stage
    (no registered backend restricts dtypes today, so prove the mechanism
    with a synthetic spec)."""
    class Float64Only(Backend):
        spec = BackendSpec(name="f64only", summary="test double",
                           algorithms=None, dtypes=("float64",),
                           bit_identical=True)

        def _execute(self, plan, a, out):  # pragma: no cover - never planned
            raise AssertionError("must not execute")

    b = Float64Only()
    assert b.plan((8, 8), "float64").acc_dtype == np.dtype("float64")
    with pytest.raises(ConfigurationError, match="does not support "
                                                 "accumulator dtype"):
        b.plan((8, 8), "float32", dtype_policy=np.float32)


class TestExecuteChecksDataAgainstPlan:
    """Execution-stage mismatches raise before the executor ever runs."""

    @pytest.fixture
    def guarded(self, backend, monkeypatch):
        """The backend with its executor replaced by a tripwire."""
        def boom(plan, a, out=None):
            raise AssertionError("_execute reached despite invalid call")
        monkeypatch.setattr(backend, "_execute", boom)
        return backend

    def test_wrong_input_shape(self, guarded, W):
        plan = guarded.plan((32, 24), "float64", tile_width=W)
        with pytest.raises(ConfigurationError, match="shape"):
            guarded.execute(plan, np.zeros((24, 32)))

    def test_wrong_input_dtype(self, guarded, W):
        plan = guarded.plan((32, 24), "float64", tile_width=W)
        with pytest.raises(ConfigurationError, match="dtype"):
            guarded.execute(plan, np.zeros((32, 24), dtype=np.float32))

    def test_out_wrong_shape(self, guarded, W):
        plan = guarded.plan((32, 24), "float64", tile_width=W)
        with pytest.raises(ConfigurationError, match="out"):
            guarded.execute(plan, np.zeros((32, 24)),
                            out=np.empty((24, 32)))

    def test_out_wrong_dtype(self, guarded, W):
        plan = guarded.plan((32, 24), "float64", tile_width=W)
        with pytest.raises(ConfigurationError, match="out"):
            guarded.execute(plan, np.zeros((32, 24)),
                            out=np.empty((32, 24), dtype=np.float32))

    def test_out_non_contiguous(self, guarded, W):
        plan = guarded.plan((32, 24), "float64", tile_width=W)
        with pytest.raises(ConfigurationError, match="out"):
            guarded.execute(plan, np.zeros((32, 24)),
                            out=np.empty((32, 48))[:, ::2])

    def test_non_plan_rejected(self, guarded):
        with pytest.raises(ConfigurationError, match="plan"):
            guarded.execute("not-a-plan", np.zeros((8, 8)))

    def test_non_2d_input_to_compute(self, guarded):
        with pytest.raises(ConfigurationError, match="2-D"):
            guarded.compute(np.zeros(8))
