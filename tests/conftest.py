"""Shared fixtures for the test suite.

Simulated runs default to adversarial settings — relaxed consistency and a
seeded random scheduling policy — so every algorithm test doubles as a
concurrency test.  ``small_matrix`` sizes keep full simulations fast while
still spanning multiple tiles at W = 32.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.gpusim import GPU, TINY_DEVICE, TITAN_V


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def small_matrix(rng) -> np.ndarray:
    """A 96x96 integer-valued matrix (3x3 tiles at W=32); exact in float64."""
    return rng.integers(0, 10, size=(96, 96)).astype(np.float64)


@pytest.fixture
def medium_matrix(rng) -> np.ndarray:
    """A 128x128 integer-valued matrix (4x4 tiles at W=32, 2x2 at 64)."""
    return rng.integers(-5, 10, size=(128, 128)).astype(np.float64)


def make_gpu(*, seed: int = 0, policy: str = "random",
             consistency: str = "relaxed", tiny: bool = False,
             max_resident: int | None = None) -> GPU:
    """Factory for configured simulators (importable helper, not a fixture)."""
    return GPU(device=TINY_DEVICE if tiny else TITAN_V,
               consistency=consistency, scheduler_policy=policy, seed=seed,
               max_resident_blocks=max_resident)


@pytest.fixture
def gpu() -> GPU:
    """Default adversarial simulator: relaxed consistency, random scheduling."""
    return make_gpu(seed=7)


@pytest.fixture
def strict_gpu() -> GPU:
    """Strong-consistency, round-robin simulator (for accounting-only tests)."""
    return make_gpu(policy="round_robin", consistency="strong")
