"""CheckpointStore: persisted carries, attempt ledgers, resume semantics."""

import json
import os

import numpy as np
import pytest

from repro.distsat import CheckpointStore
from repro.errors import CarryChecksumError, ConfigurationError

CONFIG = dict(rows=40, cols=6, shards=4, acc_dtype="int64",
              algorithm="plain", tile_width=32)


def carry(k):
    return (np.arange(6, dtype=np.int64) + 10 * k)


class TestInMemory:
    def test_requires_open_run(self):
        store = CheckpointStore()
        with pytest.raises(ConfigurationError, match="open_run"):
            store.carry_before(0)

    def test_attempt_counters(self):
        store = CheckpointStore()
        store.open_run(**CONFIG)
        assert store.attempts("reduce", 0) == 0
        assert store.record_attempt("reduce", 0) == 1
        assert store.record_attempt("reduce", 0) == 2
        assert store.record_attempt("apply", 0) == 1
        assert store.attempts("reduce", 0) == 2

    def test_carry_before_is_prefix_sum(self):
        store = CheckpointStore()
        store.open_run(**CONFIG)
        for k in range(3):
            store.commit_carry(k, carry(k))
        np.testing.assert_array_equal(store.carry_before(0),
                                      np.zeros(6, dtype=np.int64))
        np.testing.assert_array_equal(store.carry_before(2),
                                      carry(0) + carry(1))
        assert store.committed == (0, 1, 2)

    def test_carry_before_refuses_gaps(self):
        store = CheckpointStore()
        store.open_run(**CONFIG)
        store.commit_carry(0, carry(0))
        store.commit_carry(2, carry(2))
        with pytest.raises(ConfigurationError, match=r"shards \[1\]"):
            store.carry_before(3)

    def test_recommit_identical_is_idempotent(self):
        store = CheckpointStore()
        store.open_run(**CONFIG)
        store.commit_carry(1, carry(1))
        store.commit_carry(1, carry(1).copy())    # duplicate result: fine
        with pytest.raises(ConfigurationError, match="different carry"):
            store.commit_carry(1, carry(1) + 1)

    def test_load_carry_before_falls_back_in_memory(self):
        store = CheckpointStore()
        store.open_run(**CONFIG)
        store.commit_carry(0, carry(0))
        np.testing.assert_array_equal(store.load_carry_before(1), carry(0))


class TestOnDisk:
    def test_files_and_manifest(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.open_run(**CONFIG)
        store.commit_carry(0, carry(0))
        store.mark_applied(0)
        assert (tmp_path / "carry_0.npy").exists()
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        assert manifest["format"] == 1
        assert manifest["applied"] == [0]
        assert "0" in manifest["checksums"]
        # no stray temp files from the atomic replace
        assert not [p for p in os.listdir(tmp_path) if p.endswith(".tmp")]

    def test_resume_loads_committed_carries(self, tmp_path):
        first = CheckpointStore(tmp_path)
        first.open_run(**CONFIG)
        first.record_attempt("reduce", 0)
        first.record_attempt("reduce", 0)
        first.commit_carry(0, carry(0))
        first.commit_carry(1, carry(1))

        second = CheckpointStore(tmp_path)
        second.open_run(**CONFIG)
        assert second.resumed_shards == (0, 1)
        assert second.committed == (0, 1)
        # the attempt ledger survives the restart
        assert second.attempts("reduce", 0) == 2
        np.testing.assert_array_equal(second.carry_before(2),
                                      carry(0) + carry(1))

    def test_resume_rejects_different_config(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.open_run(**CONFIG)
        other = CheckpointStore(tmp_path)
        with pytest.raises(ConfigurationError, match="different run"):
            other.open_run(**{**CONFIG, "shards": 5})

    def test_damaged_carry_file_detected(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.open_run(**CONFIG)
        store.commit_carry(0, carry(0))
        np.save(tmp_path / "carry_0.npy", carry(0) + 99)
        with pytest.raises(CarryChecksumError, match="manifest checksum"):
            store.load_carry_before(1)
        fresh = CheckpointStore(tmp_path)
        with pytest.raises(CarryChecksumError):
            fresh.open_run(**CONFIG)

    def test_missing_carry_file_detected(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.open_run(**CONFIG)
        store.commit_carry(0, carry(0))
        os.unlink(tmp_path / "carry_0.npy")
        with pytest.raises(CarryChecksumError, match="unreadable"):
            store.load_carry_before(1)

    def test_load_carry_before_rereads_disk(self, tmp_path):
        """The recovery seam: disk, not in-memory state, is authoritative."""
        store = CheckpointStore(tmp_path)
        store.open_run(**CONFIG)
        store.commit_carry(0, carry(0))
        # poison the in-memory copy; the disk copy must win on recovery
        store._carries[0][:] = -1
        np.testing.assert_array_equal(store.load_carry_before(1), carry(0))

    def test_unsupported_format_rejected(self, tmp_path):
        (tmp_path / "manifest.json").write_text(json.dumps({"format": 99}))
        with pytest.raises(ConfigurationError, match="unsupported checkpoint"):
            CheckpointStore(tmp_path).open_run(**CONFIG)
