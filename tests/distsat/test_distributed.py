"""distributed_sat happy paths: bit-identity, shards, chunks, digest mode."""

import numpy as np
import pytest

from repro.distsat import (MatrixSource, SyntheticSource, distributed_sat,
                           shard_bounds)
from repro.errors import ConfigurationError
from repro.sat import get_algorithm, sat_reference

ALGORITHMS = ("2R2W", "2R2W-optimal", "2R1W", "1R1W", "(1+r)R1W",
              "1R1W-SKSS", "1R1W-SKSS-LB")


def matrix(shape, dtype=np.int64, seed=0):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 100, size=shape).astype(dtype)


class TestBitIdentity:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_all_algorithms_match_serial(self, algorithm):
        a = matrix((53, 38))
        result = distributed_sat(a, shards=3, algorithm=algorithm,
                                 tile_width=16)
        want = get_algorithm(algorithm, tile_width=16).run_host(a)
        np.testing.assert_array_equal(result.sat, want)

    @pytest.mark.parametrize("dtype", [np.uint8, np.int32, np.float64])
    def test_dtypes(self, dtype):
        # Integer-valued data keeps float64 stitching exact too.
        a = matrix((40, 25), dtype=dtype, seed=3)
        result = distributed_sat(a, shards=4, tile_width=16)
        np.testing.assert_array_equal(result.sat, sat_reference(a))

    @pytest.mark.parametrize("shape", [(1, 1), (7, 5), (16, 48), (33, 17)])
    def test_ragged_shapes(self, shape):
        a = matrix(shape, seed=5)
        result = distributed_sat(a, shards=3, tile_width=16)
        np.testing.assert_array_equal(result.sat, sat_reference(a))

    def test_single_shard_and_overclamped_shards(self):
        a = matrix((9, 12), seed=7)
        one = distributed_sat(a, shards=1)
        many = distributed_sat(a, shards=50)   # clamped to 9 row-shards
        np.testing.assert_array_equal(one.sat, sat_reference(a))
        np.testing.assert_array_equal(many.sat, one.sat)
        assert many.stats["shards"] == 9
        assert many.bounds == tuple(shard_bounds(9, 9))

    def test_chunked_workers_match_unchunked(self):
        a = matrix((50, 21), seed=9)
        whole = distributed_sat(a, shards=3)
        chunked = distributed_sat(a, shards=3, chunk_rows=4)
        np.testing.assert_array_equal(chunked.sat, whole.sat)
        assert 0 < chunked.stats["peak_worker_bytes"] \
            < whole.stats["peak_worker_bytes"]


class TestResult:
    def test_carries_are_total_column_sums(self):
        a = matrix((31, 14), seed=11)
        result = distributed_sat(a, shards=4)
        np.testing.assert_array_equal(
            result.carries.planes()["BCS"],
            a.sum(axis=0, dtype=result.sat.dtype))

    def test_rect_sum_full_mode(self):
        a = matrix((24, 18), seed=13)
        result = distributed_sat(a, shards=3)
        assert result.rect_sum(0, 0, 23, 17) == a.sum()
        assert result.rect_sum(5, 3, 11, 9) == a[5:12, 3:10].sum()
        with pytest.raises(ConfigurationError, match="invalid rectangle"):
            result.rect_sum(4, 0, 2, 5)

    def test_clean_run_stats(self):
        a = matrix((20, 10), seed=15)
        result = distributed_sat(a, shards=2)
        stats = result.stats
        assert stats["attempts"] == {"reduce": {0: 1, 1: 1},
                                     "apply": {0: 1, 1: 1}}
        assert stats["recovered_shards"] == []
        assert stats["resumed_shards"] == []
        assert stats["transport"] == "inline"


class TestDigestMode:
    def test_edge_rows_and_rect_sums(self):
        source = SyntheticSource(64, 40)
        result = distributed_sat(source, shards=4, collect=False,
                                 chunk_rows=8)
        assert result.sat is None
        assert sorted(result.digests) == [0, 1, 2, 3]
        full = sat_reference(source.band(0, 64))
        for edge, row in result.edge_rows.items():
            np.testing.assert_array_equal(row, full[edge])
        # edge-aligned rectangles answered from retained rows alone
        assert result.rect_sum(0, 0, 15, 39) \
            == source.rect(0, 0, 15, 39).sum()
        assert result.rect_sum(16, 5, 47, 20) \
            == source.rect(16, 5, 47, 20).sum()

    def test_non_edge_rows_refused(self):
        result = distributed_sat(SyntheticSource(64, 40), shards=4,
                                 collect=False)
        with pytest.raises(ConfigurationError, match="retained shard edge"):
            result.rect_sum(0, 0, 14, 10)

    def test_matrix_source_streams_in_band_chunks(self):
        a = matrix((48, 30), seed=17)
        result = distributed_sat(MatrixSource(a), shards=3, collect=False)
        full = sat_reference(a)
        for edge, row in result.edge_rows.items():
            np.testing.assert_array_equal(row, full[edge])


class TestValidation:
    @pytest.mark.parametrize("bad", [0, -1, True, 1.5])
    def test_bad_shards(self, bad):
        with pytest.raises(ConfigurationError, match="shards"):
            distributed_sat(matrix((8, 8)), shards=bad)

    @pytest.mark.parametrize("bad", [0, -3, True, 2.0])
    def test_bad_chunk_rows(self, bad):
        with pytest.raises(ConfigurationError, match="chunk_rows"):
            distributed_sat(matrix((8, 8)), chunk_rows=bad)

    def test_bad_max_attempts(self):
        with pytest.raises(ConfigurationError, match="max_attempts"):
            distributed_sat(matrix((8, 8)), max_attempts=0)

    def test_cannot_nest_itself(self):
        with pytest.raises(ConfigurationError, match="cannot use itself"):
            distributed_sat(matrix((8, 8)), inner_engine="distributed")

    def test_bad_inner_configuration_fails_before_dispatch(self):
        with pytest.raises(ConfigurationError):
            distributed_sat(matrix((8, 8)), algorithm="no-such-algorithm")


class TestInnerEngines:
    @pytest.mark.filterwarnings("ignore::RuntimeWarning")
    @pytest.mark.parametrize("engine", ["serial", "wavefront", "compiled"])
    def test_any_host_engine_per_band(self, engine):
        a = matrix((40, 22), seed=19)
        result = distributed_sat(a, shards=3, algorithm="1R1W-SKSS",
                                 tile_width=16, inner_engine=engine)
        want = get_algorithm("1R1W-SKSS", tile_width=16).run_host(a)
        np.testing.assert_array_equal(result.sat, want)


class TestComputeSatIntegration:
    def test_engine_distributed_via_top_level_api(self):
        from repro.sat import compute_sat
        a = matrix((35, 27), seed=21)
        result = compute_sat(a, engine="distributed", shards=3,
                             tile_width=16)
        want = get_algorithm(result.algorithm, tile_width=16).run_host(a)
        np.testing.assert_array_equal(result.sat, want)
        assert result.params["engine"] == "distributed"

    def test_shards_rejected_without_distributed_engine(self):
        from repro.sat import compute_sat
        with pytest.raises(ConfigurationError, match="distributed engine"):
            compute_sat(matrix((8, 8)), shards=2)
        with pytest.raises(ConfigurationError, match="not meaningful"):
            compute_sat(matrix((8, 8)), engine="wavefront", shards=2)
