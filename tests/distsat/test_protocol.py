"""Wire protocol, shard geometry and fault-plan algebra."""

import numpy as np
import pytest

from repro.distsat import FaultAction, FaultPlan, checksum, shard_bounds
from repro.distsat.protocol import decode_message, encode_message
from repro.errors import ConfigurationError


class TestShardBounds:
    def test_covers_all_rows_contiguously(self):
        bounds = shard_bounds(53, 4)
        assert bounds[0][0] == 0 and bounds[-1][1] == 53
        for (_, hi), (lo, _) in zip(bounds, bounds[1:]):
            assert hi == lo

    def test_near_equal_split(self):
        # 53 = 4*13 + 1: the first shard gets the extra row.
        sizes = [hi - lo for lo, hi in shard_bounds(53, 4)]
        assert sizes == [14, 13, 13, 13]

    def test_clamped_to_rows(self):
        assert shard_bounds(3, 8) == [(0, 1), (1, 2), (2, 3)]

    @pytest.mark.parametrize("rows,shards", [(0, 2), (-1, 2), (5, 0), (5, -3)])
    def test_rejects_non_positive(self, rows, shards):
        with pytest.raises(ConfigurationError):
            shard_bounds(rows, shards)


class TestChecksum:
    def test_sensitive_to_content_shape_and_dtype(self):
        a = np.arange(12, dtype=np.int64)
        assert checksum(a) == checksum(a.copy())
        assert checksum(a) != checksum(a + 1)
        assert checksum(a) != checksum(a.reshape(3, 4))
        assert checksum(a) != checksum(a.astype(np.int32))

    def test_non_contiguous_input(self):
        a = np.arange(24, dtype=np.int64).reshape(4, 6)
        assert checksum(a[:, ::2]) == checksum(np.ascontiguousarray(a[:, ::2]))


class TestFaultPlan:
    def test_action_validation(self):
        with pytest.raises(ConfigurationError, match="unknown fault kind"):
            FaultAction(kind="explode", shard=0)
        with pytest.raises(ConfigurationError, match="unknown fault phase"):
            FaultAction(kind="kill", shard=0, phase="shuffle")
        with pytest.raises(ConfigurationError, match="attempt >= 1"):
            FaultAction(kind="kill", shard=0, attempt=0)
        with pytest.raises(ConfigurationError, match="shard must be >= 0"):
            FaultAction(kind="kill", shard=-1)

    def test_action_for_is_exact(self):
        plan = FaultPlan(actions=(
            FaultAction(kind="kill", shard=1, attempt=1, phase="reduce"),))
        assert plan.action_for(1, 1, "reduce").kind == "kill"
        assert plan.action_for(1, 1, "apply") is None
        assert plan.action_for(1, 2, "reduce") is None
        assert plan.action_for(0, 1, "reduce") is None

    def test_expected_attempts(self):
        plan = FaultPlan(actions=(
            FaultAction(kind="kill", shard=2, attempt=1, phase="reduce"),
            FaultAction(kind="corrupt", shard=2, attempt=2, phase="reduce"),
            FaultAction(kind="delay", shard=0, attempt=1, phase="apply",
                        seconds=0.001),
        ))
        # Two lossy attempts then a clean third.
        assert plan.expected_attempts(2, "reduce") == 3
        # Delays reply normally: no attempt is consumed.
        assert plan.expected_attempts(0, "apply") == 1
        assert plan.expected_attempts(1, "reduce") == 1

    def test_dict_round_trip(self):
        plan = FaultPlan(actions=(
            FaultAction(kind="corrupt", shard=0, attempt=2, phase="apply"),),
            abort_after_shard=1)
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ConfigurationError, match="unknown fault plan"):
            FaultPlan.from_dict({"actions": [], "retries": 3})
        with pytest.raises(ConfigurationError, match="invalid fault action"):
            FaultPlan.from_dict({"actions": [{"kind": "kill", "row": 1}]})


class TestMessages:
    def test_ndarray_round_trip(self):
        carry = np.arange(7, dtype=np.int64) * 3
        msg = {"type": "task", "phase": "apply", "shard": 2,
               "carry_in": carry, "nested": {"rows": [carry, carry + 1]}}
        out = decode_message(encode_message(msg))
        np.testing.assert_array_equal(out["carry_in"], carry)
        np.testing.assert_array_equal(out["nested"]["rows"][1], carry + 1)
        assert out["carry_in"].dtype == carry.dtype

    def test_numpy_scalars_become_plain_numbers(self):
        msg = {"type": "result", "shard": np.int64(3), "x": np.float64(0.5)}
        out = decode_message(encode_message(msg))
        assert out["shard"] == 3 and isinstance(out["shard"], int)
        assert out["x"] == 0.5 and isinstance(out["x"], float)

    def test_unknown_type_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown message type"):
            encode_message({"type": "gossip"})

    def test_reserved_key_rejected(self):
        with pytest.raises(ConfigurationError, match="reserved key"):
            encode_message({"type": "task", "bad": {"__ndarray__": "x"}})

    def test_undecodable_bytes_rejected(self):
        with pytest.raises(ConfigurationError, match="undecodable"):
            decode_message(b"\xff\xfenot json")
        with pytest.raises(ConfigurationError,
                           match="not a protocol message"):
            decode_message(b'{"phase": "reduce"}')
        with pytest.raises(ConfigurationError,
                           match="not a protocol message"):
            decode_message(b"[1, 2]")
