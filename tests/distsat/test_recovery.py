"""Crash recovery: every injected fault must be invisible in the output
and exactly accounted in the attempt ledger.

The matrix kills each shard, on the first attempt and again on the retry,
in both phases, over integer and float accumulators and ragged shapes; the
result must stay bit-identical to the serial reference (float64 data is
integer-valued, so stitching is exact) and the per-shard attempt counters
must equal :meth:`FaultPlan.expected_attempts` — a silently swallowed
fault or a spurious retry fails even when the numbers agree.
"""

import numpy as np
import pytest

from repro.distsat import (CheckpointStore, FaultAction, FaultPlan,
                           distributed_sat)
from repro.errors import CoordinatorAborted, ShardFailedError
from repro.sat import sat_reference

SHARDS = 3
SHAPE = (53, 21)        # ragged: 53 = 3*17 + 2, not tile- or shard-aligned


def matrix(dtype, seed=23):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 100, size=SHAPE).astype(dtype)


def run_and_check(a, plan, **kwargs):
    """One faulted run: bit-identical result + pinned attempt ledger."""
    result = distributed_sat(a, shards=SHARDS, fault_plan=plan,
                             max_attempts=4, **kwargs)
    np.testing.assert_array_equal(result.sat, sat_reference(a))
    for phase in ("reduce", "apply"):
        for shard in range(SHARDS):
            assert result.stats["attempts"][phase][shard] \
                == plan.expected_attempts(shard, phase), \
                (phase, shard, result.stats["attempts"])
    return result


class TestKillMatrix:
    @pytest.mark.parametrize("dtype", ["int32", "float64"])
    @pytest.mark.parametrize("phase", ["reduce", "apply"])
    @pytest.mark.parametrize("shard", range(SHARDS))
    def test_single_kill(self, shard, phase, dtype):
        plan = FaultPlan(actions=(
            FaultAction(kind="kill", shard=shard, attempt=1, phase=phase),))
        result = run_and_check(matrix(dtype), plan)
        assert result.stats["recovered_shards"] == [shard]

    @pytest.mark.parametrize("phase", ["reduce", "apply"])
    @pytest.mark.parametrize("shard", range(SHARDS))
    def test_kill_first_attempt_and_retry(self, shard, phase):
        """The retry itself dies too; the third attempt must land."""
        plan = FaultPlan(actions=(
            FaultAction(kind="kill", shard=shard, attempt=1, phase=phase),
            FaultAction(kind="kill", shard=shard, attempt=2, phase=phase)))
        assert plan.expected_attempts(shard, phase) == 3
        run_and_check(matrix("int32"), plan)

    def test_kills_on_different_shards_and_phases(self):
        plan = FaultPlan(actions=(
            FaultAction(kind="kill", shard=0, attempt=1, phase="reduce"),
            FaultAction(kind="kill", shard=2, attempt=1, phase="apply")))
        result = run_and_check(matrix("int32"), plan)
        assert result.stats["recovered_shards"] == [0, 2]

    def test_fault_plan_accepted_in_dict_form(self):
        plan = FaultPlan(actions=(
            FaultAction(kind="kill", shard=1, attempt=1, phase="apply"),))
        a = matrix("int32")
        result = distributed_sat(a, shards=SHARDS,
                                 fault_plan=plan.to_dict(), max_attempts=4)
        np.testing.assert_array_equal(result.sat, sat_reference(a))


class TestCorruptAndDelay:
    @pytest.mark.parametrize("phase", ["reduce", "apply"])
    def test_corrupt_payload_detected_and_retried(self, phase):
        """The payload is damaged after its checksum: the coordinator must
        reject the mismatch and retry — corruption never reaches the SAT."""
        plan = FaultPlan(actions=(
            FaultAction(kind="corrupt", shard=1, attempt=1, phase=phase),))
        result = run_and_check(matrix("int32"), plan)
        assert result.stats["recovered_shards"] == [1]

    def test_delay_is_not_a_failure(self):
        plan = FaultPlan(actions=(
            FaultAction(kind="delay", shard=0, attempt=1, phase="reduce",
                        seconds=0.01),))
        result = run_and_check(matrix("int32"), plan)
        assert result.stats["recovered_shards"] == []

    def test_chunked_shards_recover_too(self):
        plan = FaultPlan(actions=(
            FaultAction(kind="kill", shard=2, attempt=1, phase="apply"),
            FaultAction(kind="corrupt", shard=0, attempt=1, phase="reduce")))
        run_and_check(matrix("float64"), plan, chunk_rows=5)


class TestRetryBudget:
    def test_exhausted_budget_raises(self):
        plan = FaultPlan(actions=tuple(
            FaultAction(kind="kill", shard=1, attempt=j, phase="reduce")
            for j in (1, 2, 3)))
        with pytest.raises(ShardFailedError) as err:
            distributed_sat(matrix("int32"), shards=SHARDS,
                            fault_plan=plan, max_attempts=3)
        assert err.value.shard == 1
        assert err.value.attempts == 3


class TestPersistedCarries:
    def test_killed_apply_resumes_from_disk(self, tmp_path, monkeypatch):
        """A retried apply must take its carry-in from the checkpoint files
        (the recovery seam), not from coordinator memory."""
        calls = []
        real = CheckpointStore.load_carry_before

        def spy(self, shard):
            calls.append(shard)
            return real(self, shard)
        monkeypatch.setattr(CheckpointStore, "load_carry_before", spy)
        plan = FaultPlan(actions=(
            FaultAction(kind="kill", shard=2, attempt=1, phase="apply"),))
        result = run_and_check(matrix("int32"), plan,
                               checkpoint_dir=tmp_path)
        assert calls == [2]     # exactly the killed shard, exactly once
        assert result.stats["attempts"]["apply"] == {0: 1, 1: 1, 2: 2}
        assert (tmp_path / "manifest.json").exists()
        assert sorted(tmp_path.glob("carry_*.npy")) \
            == [tmp_path / f"carry_{k}.npy" for k in range(SHARDS)]

    def test_coordinator_crash_and_restart(self, tmp_path):
        """An aborted coordinator's successor resumes from the manifest:
        committed shards skip their reduce, the others are recomputed, and
        the persisted attempt ledger pins exactly which is which."""
        a = matrix("int32")
        plan = FaultPlan(abort_after_shard=1)
        with pytest.raises(CoordinatorAborted) as err:
            distributed_sat(a, shards=4, fault_plan=plan,
                            checkpoint_dir=tmp_path)
        assert err.value.committed_shards == 2

        result = distributed_sat(a, shards=4, checkpoint_dir=tmp_path)
        np.testing.assert_array_equal(result.sat, sat_reference(a))
        assert result.stats["resumed_shards"] == [0, 1]
        # Shards 0-1's carries were persisted before the crash: one reduce
        # attempt ever.  Shards 2-3 lost their first attempt to the crash
        # and were recomputed after the restart: two on the ledger.
        assert result.stats["attempts"]["reduce"] == {0: 1, 1: 1, 2: 2, 3: 2}
        assert result.stats["recovered_shards"] == [2, 3]

    def test_restart_with_worker_kill_still_bit_identical(self, tmp_path):
        a = matrix("float64")
        with pytest.raises(CoordinatorAborted):
            distributed_sat(a, shards=SHARDS,
                            fault_plan=FaultPlan(abort_after_shard=0),
                            checkpoint_dir=tmp_path)
        plan = FaultPlan(actions=(
            FaultAction(kind="kill", shard=1, attempt=2, phase="reduce"),))
        # shard 1's reduce attempt counter is already at 1 from the aborted
        # run, so the kill targets the post-restart recompute attempt.
        result = distributed_sat(a, shards=SHARDS, fault_plan=plan,
                                 checkpoint_dir=tmp_path, max_attempts=4)
        np.testing.assert_array_equal(result.sat, sat_reference(a))
        assert result.stats["attempts"]["reduce"][1] == 3


class TestProcessTransport:
    """Real worker processes: one clean run, one with a genuine kill.

    Hard process deaths are detected by liveness, which can lose more than
    the faulted task (results die with the queue feeder thread), so the
    ledger assertions here are lower bounds — exact accounting is pinned on
    the inline transport above.
    """

    def test_clean_run(self):
        a = matrix("int32")
        result = distributed_sat(a, shards=4, transport="process", workers=2)
        np.testing.assert_array_equal(result.sat, sat_reference(a))
        assert result.stats["workers"] == 2

    def test_worker_process_killed_mid_run(self):
        a = matrix("int32")
        plan = FaultPlan(actions=(
            FaultAction(kind="kill", shard=1, attempt=1, phase="reduce"),))
        result = distributed_sat(a, shards=4, transport="process",
                                 workers=2, fault_plan=plan, max_attempts=5)
        np.testing.assert_array_equal(result.sat, sat_reference(a))
        assert result.stats["attempts"]["reduce"][1] >= 2
        assert 1 in result.stats["recovered_shards"]
