"""BlockContext: accounted global/shared access from kernels."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.gpusim import GPU, TITAN_V


def run_single_block(kernel, *args, threads=32, gpu=None):
    gpu = gpu or GPU(device=TITAN_V, consistency="strong")
    return gpu, gpu.launch(kernel, grid_blocks=1, threads_per_block=threads,
                           args=args)


class TestGlobalAccess:
    def test_gload_shape_preserved(self):
        gpu = GPU()
        buf = gpu.alloc("x", (8, 8), np.float64,
                        fill=np.arange(64.0).reshape(8, 8))
        seen = {}

        def k(ctx, buf):
            seen["v"] = ctx.gload(buf, np.arange(64).reshape(8, 8))
        gpu.launch(k, grid_blocks=1, threads_per_block=64, args=(buf,))
        assert seen["v"].shape == (8, 8)
        assert np.array_equal(seen["v"], np.arange(64.0).reshape(8, 8))

    def test_coalesced_read_transactions(self):
        gpu = GPU()
        buf = gpu.alloc("x", (64,), np.float64)

        def k(ctx, buf):
            ctx.gload(buf, ctx.tids)  # 32 consecutive float64 = 8 segments
        _, stats = run_single_block(k, buf, gpu=gpu)
        assert stats.traffic.global_read_requests == 32
        assert stats.traffic.global_read_transactions == 8

    def test_strided_read_transactions(self):
        gpu = GPU()
        n = 256
        buf = gpu.alloc("x", (n * 32,), np.float64)

        def k(ctx, buf):
            ctx.gload(buf, ctx.tids * n)  # one segment per thread
        _, stats = run_single_block(k, buf, gpu=gpu)
        assert stats.traffic.global_read_transactions == 32

    def test_store_visible_after_kernel(self):
        gpu = GPU()  # relaxed: retirement must flush
        buf = gpu.alloc("x", (32,), np.float64)

        def k(ctx, buf):
            ctx.gstore(buf, ctx.tids, ctx.tids.astype(float))
        run_single_block(k, buf, gpu=gpu)
        assert np.array_equal(gpu.read("x"), np.arange(32.0))

    def test_atomic_add_returns_sequence(self):
        gpu = GPU()
        buf = gpu.alloc("c", (1,), np.int64)
        got = []

        def k(ctx, buf):
            got.append(ctx.atomic_add(buf, 0, 1))
        gpu.launch(k, grid_blocks=5, threads_per_block=32, args=(buf,))
        assert sorted(got) == [0, 1, 2, 3, 4]

    def test_scalar_roundtrip(self):
        gpu = GPU(consistency="strong")
        buf = gpu.alloc("x", (4,), np.float64)

        def k(ctx, buf):
            ctx.gstore_scalar(buf, 2, 1.25)
            assert ctx.gload_scalar(buf, 2) == 1.25
        run_single_block(k, buf, gpu=gpu)

    def test_read_own_writes_in_relaxed_mode(self):
        gpu = GPU(consistency="relaxed")
        buf = gpu.alloc("x", (4,), np.float64)
        ok = {}

        def k(ctx, buf):
            ctx.gstore_scalar(buf, 1, 5.0)
            ok["v"] = ctx.gload_scalar(buf, 1)
        run_single_block(k, buf, gpu=gpu)
        assert ok["v"] == 5.0


class TestSharedAndWarp:
    def test_shared_roundtrip_with_counters(self):
        gpu = GPU()

        def k(ctx):
            ctx.salloc("t", 64)
            ctx.sstore("t", np.arange(32), np.arange(32.0))
            assert np.array_equal(ctx.sload("t", np.arange(32)),
                                  np.arange(32.0))
        _, stats = run_single_block(k, gpu=gpu)
        assert stats.traffic.shared_write_requests == 32
        assert stats.traffic.shared_read_requests == 32

    def test_warp_scan_through_context(self):
        gpu = GPU()
        out = {}

        def k(ctx):
            out["v"] = ctx.warp_inclusive_scan(np.ones(32))
        run_single_block(k, gpu=gpu)
        assert np.array_equal(out["v"], np.arange(1.0, 33.0))

    def test_syncthreads_counted(self):
        gpu = GPU()

        def k(ctx):
            yield ctx.syncthreads()
            yield ctx.syncthreads()
        _, stats = run_single_block(k, gpu=gpu)
        assert stats.traffic.syncthreads == 2

    def test_non_warp_multiple_block_rejected(self):
        gpu = GPU()
        with pytest.raises(ConfigurationError):
            gpu.launch(lambda ctx: None, grid_blocks=1, threads_per_block=33)

    def test_cycle_accounting_accumulates(self):
        gpu = GPU()
        buf = gpu.alloc("x", (32,), np.float64)

        def k(ctx, buf):
            ctx.gload(buf, ctx.tids)
        _, stats = run_single_block(k, buf, gpu=gpu)
        assert stats.sim_cycles > 0
