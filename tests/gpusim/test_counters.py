"""Counter bookkeeping: MemoryTraffic, KernelStats, LaunchSummary."""

import numpy as np

from repro.gpusim import (GPU, KernelStats, LaunchSummary, MemoryTraffic,
                          bank_conflict_cycles, count_warp_transactions)


class TestMemoryTraffic:
    def test_merge_accumulates_every_field(self):
        a = MemoryTraffic(global_read_requests=1, fences=2, shuffle_ops=3)
        b = MemoryTraffic(global_read_requests=10, fences=20, spin_iterations=5)
        a.merge(b)
        assert a.global_read_requests == 11
        assert a.fences == 22
        assert a.shuffle_ops == 3
        assert a.spin_iterations == 5

    def test_copy_is_independent(self):
        a = MemoryTraffic(global_write_requests=4)
        b = a.copy()
        b.global_write_requests = 99
        assert a.global_write_requests == 4

    def test_bytes_properties(self):
        t = MemoryTraffic(global_read_transactions=3,
                          global_write_transactions=2)
        assert t.global_bytes_read == 96
        assert t.global_bytes_written == 64

    def test_as_dict_round_trip(self):
        t = MemoryTraffic(atomic_ops=7)
        assert MemoryTraffic(**t.as_dict()).atomic_ops == 7


class TestKernelStats:
    def test_total_threads(self):
        s = KernelStats(name="k", grid_blocks=10, threads_per_block=256)
        assert s.total_threads == 2560

    def test_max_resident_observed_recorded(self):
        gpu = GPU(max_resident_blocks=3)
        buf = gpu.alloc("x", (10,), np.float64)

        def k(ctx, buf):
            ctx.gstore_scalar(buf, ctx.block_id, 1.0)
            yield ctx.syncthreads()
        stats = gpu.launch(k, grid_blocks=10, threads_per_block=32,
                           args=(buf,))
        assert 1 <= stats.max_resident_observed <= 3

    def test_full_residency_observed(self):
        gpu = GPU()
        buf = gpu.alloc("x", (4,), np.float64)

        def k(ctx, buf):
            yield ctx.syncthreads()
            ctx.gstore_scalar(buf, ctx.block_id, 1.0)
        stats = gpu.launch(k, grid_blocks=4, threads_per_block=32, args=(buf,))
        assert stats.max_resident_observed == 4


class TestLaunchSummary:
    def test_aggregates(self):
        s = LaunchSummary()
        k1 = KernelStats(name="a", grid_blocks=2, threads_per_block=64)
        k1.traffic.global_read_requests = 5
        k2 = KernelStats(name="b", grid_blocks=8, threads_per_block=32)
        k2.traffic.global_read_requests = 7
        s.add(k1)
        s.add(k2)
        assert s.kernel_calls == 2
        assert s.max_threads == 256
        assert s.global_read_requests == 12
        assert s.traffic.global_read_requests == 12

    def test_empty_summary(self):
        s = LaunchSummary()
        assert s.kernel_calls == 0
        assert s.max_threads == 0

    def test_per_kernel_merges_suffixed_launches(self):
        """Per-diagonal launches 'wave_0', 'wave_1', ... merge into 'wave';
        unsuffixed names pass through unchanged."""
        s = LaunchSummary()
        for i, reads in enumerate((3, 5)):
            k = KernelStats(name=f"wave_{i}", grid_blocks=i + 1,
                            threads_per_block=32)
            k.traffic.global_read_requests = reads
            s.add(k)
        other = KernelStats(name="gsat", grid_blocks=4, threads_per_block=64)
        s.add(other)
        merged = s.per_kernel()
        assert set(merged) == {"wave", "gsat"}
        assert merged["wave"].launches == 2
        assert merged["wave"].grid_blocks == 3
        assert merged["wave"].traffic.global_read_requests == 8
        assert merged["gsat"].launches == 1

    def test_per_kernel_keeps_band_letters(self):
        s = LaunchSummary()
        s.add(KernelStats(name="hybrid_A_local", grid_blocks=1,
                          threads_per_block=32))
        s.add(KernelStats(name="hybrid_C_local", grid_blocks=2,
                          threads_per_block=32))
        assert set(s.per_kernel()) == {"hybrid_A_local", "hybrid_C_local"}


class TestWarpTransactions:
    """32-byte-segment accounting — the quantity costcheck predicts."""

    def test_unit_stride_float64_is_width_over_four(self):
        # 32 contiguous float64 accesses span 8 segments: fully coalesced.
        addrs = np.arange(32) * 8
        assert count_warp_transactions(addrs) == 8

    def test_large_stride_is_one_per_thread(self):
        # A W-stride column walk (W=32 float64s = 256 bytes apart) puts
        # every thread in its own segment.
        addrs = np.arange(32) * 256
        assert count_warp_transactions(addrs) == 32

    def test_broadcast_is_one_transaction(self):
        addrs = np.zeros(32, dtype=np.int64)
        assert count_warp_transactions(addrs) == 1

    def test_partial_warp_counts(self):
        addrs = np.arange(4) * 8  # 4 threads, one shared segment
        assert count_warp_transactions(addrs) == 1

    def test_warps_account_independently(self):
        # Two warps each touching the same 8 segments: 16 total, not 8.
        addrs = np.concatenate([np.arange(32) * 8, np.arange(32) * 8])
        assert count_warp_transactions(addrs) == 16

    def test_empty_access_is_free(self):
        assert count_warp_transactions(np.array([], dtype=np.int64)) == 0

    def test_misaligned_straddle_pays_an_extra_segment(self):
        # 32 contiguous float64s starting 8 bytes into a segment touch 9.
        addrs = 8 + np.arange(32) * 8
        assert count_warp_transactions(addrs) == 9


class TestBankConflicts:
    def test_unit_stride_is_conflict_free(self):
        assert bank_conflict_cycles(np.arange(32)) == 0

    def test_same_bank_stride_serializes(self):
        # Stride 32 with 32 banks: all threads hit bank 0 at distinct
        # addresses -> 31 replays.
        assert bank_conflict_cycles(np.arange(32) * 32) == 31

    def test_broadcast_does_not_conflict(self):
        assert bank_conflict_cycles(np.zeros(32, dtype=np.int64)) == 0

    def test_two_way_conflict(self):
        # Stride 16 with 32 banks: pairs of threads share a bank.
        assert bank_conflict_cycles(np.arange(32) * 16) == 15

    def test_warps_account_independently(self):
        offs = np.concatenate([np.arange(32) * 32, np.arange(32) * 32])
        assert bank_conflict_cycles(offs) == 62

    def test_empty_access_is_free(self):
        assert bank_conflict_cycles(np.array([], dtype=np.int64)) == 0
