"""Counter bookkeeping: MemoryTraffic, KernelStats, LaunchSummary."""

import numpy as np

from repro.gpusim import GPU, KernelStats, LaunchSummary, MemoryTraffic


class TestMemoryTraffic:
    def test_merge_accumulates_every_field(self):
        a = MemoryTraffic(global_read_requests=1, fences=2, shuffle_ops=3)
        b = MemoryTraffic(global_read_requests=10, fences=20, spin_iterations=5)
        a.merge(b)
        assert a.global_read_requests == 11
        assert a.fences == 22
        assert a.shuffle_ops == 3
        assert a.spin_iterations == 5

    def test_copy_is_independent(self):
        a = MemoryTraffic(global_write_requests=4)
        b = a.copy()
        b.global_write_requests = 99
        assert a.global_write_requests == 4

    def test_bytes_properties(self):
        t = MemoryTraffic(global_read_transactions=3,
                          global_write_transactions=2)
        assert t.global_bytes_read == 96
        assert t.global_bytes_written == 64

    def test_as_dict_round_trip(self):
        t = MemoryTraffic(atomic_ops=7)
        assert MemoryTraffic(**t.as_dict()).atomic_ops == 7


class TestKernelStats:
    def test_total_threads(self):
        s = KernelStats(name="k", grid_blocks=10, threads_per_block=256)
        assert s.total_threads == 2560

    def test_max_resident_observed_recorded(self):
        gpu = GPU(max_resident_blocks=3)
        buf = gpu.alloc("x", (10,), np.float64)

        def k(ctx, buf):
            ctx.gstore_scalar(buf, ctx.block_id, 1.0)
            yield ctx.syncthreads()
        stats = gpu.launch(k, grid_blocks=10, threads_per_block=32,
                           args=(buf,))
        assert 1 <= stats.max_resident_observed <= 3

    def test_full_residency_observed(self):
        gpu = GPU()
        buf = gpu.alloc("x", (4,), np.float64)

        def k(ctx, buf):
            yield ctx.syncthreads()
            ctx.gstore_scalar(buf, ctx.block_id, 1.0)
        stats = gpu.launch(k, grid_blocks=4, threads_per_block=32, args=(buf,))
        assert stats.max_resident_observed == 4


class TestLaunchSummary:
    def test_aggregates(self):
        s = LaunchSummary()
        k1 = KernelStats(name="a", grid_blocks=2, threads_per_block=64)
        k1.traffic.global_read_requests = 5
        k2 = KernelStats(name="b", grid_blocks=8, threads_per_block=32)
        k2.traffic.global_read_requests = 7
        s.add(k1)
        s.add(k2)
        assert s.kernel_calls == 2
        assert s.max_threads == 256
        assert s.global_read_requests == 12
        assert s.traffic.global_read_requests == 12

    def test_empty_summary(self):
        s = LaunchSummary()
        assert s.kernel_calls == 0
        assert s.max_threads == 0
