"""DeviceProperties: limits, occupancy arithmetic, validation."""

import pytest

from repro.errors import ConfigurationError
from repro.gpusim import TINY_DEVICE, TITAN_V, DeviceProperties


class TestTitanV:
    def test_core_count_matches_paper(self):
        # "80 streaming multiprocessors with 64 cores each"
        assert TITAN_V.num_sms == 80
        assert TITAN_V.cores_per_sm == 64
        assert TITAN_V.total_cores == 5120

    def test_memory_capacity_is_12gb(self):
        assert TITAN_V.global_mem_bytes == 12 * 1024**3

    def test_shared_memory_fits_w128_float32_tile(self):
        # "When W = 128, 4-byte float matrices of size 128x128 needs 64Kbytes"
        assert 128 * 128 * 4 <= TITAN_V.shared_mem_per_block

    def test_warp_size(self):
        assert TITAN_V.warp_size == 32


class TestResidency:
    def test_thread_limit_bounds_blocks(self):
        # 1024-thread blocks: 2 per SM (2048-thread SM limit).
        assert TITAN_V.max_resident_blocks(1024) == 2 * 80

    def test_small_blocks_hit_block_slot_limit(self):
        assert TITAN_V.max_resident_blocks(32) == 32 * 80

    def test_shared_memory_bounds_blocks(self):
        # A 96 KB block occupies a whole SM's shared memory.
        blocks = TITAN_V.max_resident_blocks(128, 96 * 1024)
        assert blocks == 80

    def test_oversized_shared_request_rejected(self):
        with pytest.raises(ConfigurationError):
            TITAN_V.max_resident_blocks(128, 97 * 1024)

    def test_oversized_block_rejected(self):
        with pytest.raises(ConfigurationError):
            TITAN_V.max_resident_blocks(2048)

    def test_nonpositive_block_rejected(self):
        with pytest.raises(ConfigurationError):
            TITAN_V.max_resident_blocks(0)

    def test_tiny_device_single_block_per_sm(self):
        assert TINY_DEVICE.max_resident_blocks(512) == 2


class TestValidation:
    def test_warp_size_must_be_power_of_two(self):
        with pytest.raises(ConfigurationError):
            DeviceProperties(name="bad", num_sms=1, cores_per_sm=1, warp_size=24)

    def test_block_limit_must_be_warp_multiple(self):
        with pytest.raises(ConfigurationError):
            DeviceProperties(name="bad", num_sms=1, cores_per_sm=1,
                             max_threads_per_block=100)

    def test_with_overrides_returns_copy(self):
        tweaked = TITAN_V.with_overrides(num_sms=40)
        assert tweaked.num_sms == 40
        assert TITAN_V.num_sms == 80
        assert tweaked.name == TITAN_V.name
