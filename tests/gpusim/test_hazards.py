"""Memory-consistency hazards: why the publish protocol needs its fence.

These tests *inject* the classic look-back bug — raising a status flag without
a ``__threadfence()`` between the data store and the flag store — and show the
relaxed-consistency simulator exposes it, while the correct protocol survives
every adversarial schedule.  This is the "fences and look back are tricky"
content of the paper made executable.
"""

import numpy as np

from repro.gpusim import GPU, TINY_DEVICE
from repro.primitives.lookback import publish

N_SEEDS = 40


def _writer_reader(buggy: bool):
    def kernel(ctx, data, flag, out):
        if ctx.block_id == 0:
            ctx.gstore_scalar(data, 0, 42.0)
            if not buggy:
                ctx.threadfence()
            ctx.gstore_scalar(flag, 0, 1)
            yield ctx.syncthreads()
        else:
            yield from ctx.wait_until(flag, 0, lambda v: v >= 1)
            ctx.gstore_scalar(out, 0, ctx.gload_scalar(data, 0))
    return kernel


def _run_once(seed: int, buggy: bool) -> float:
    gpu = GPU(device=TINY_DEVICE, scheduler_policy="random", seed=seed,
              consistency="relaxed", max_resident_blocks=2)
    data = gpu.alloc("data", (1,), np.float64)
    flag = gpu.alloc("flag", (1,), np.int64)
    out = gpu.alloc("out", (1,), np.float64)
    gpu.launch(_writer_reader(buggy), grid_blocks=2, threads_per_block=32,
               args=(data, flag, out))
    return float(gpu.read("out")[0])


class TestFenceProtocol:
    def test_missing_fence_is_observable(self):
        """Without the fence, some schedule publishes the flag before the
        data: the reader sees a stale value at least once across seeds."""
        stale = sum(1 for s in range(N_SEEDS) if _run_once(s, buggy=True) != 42.0)
        assert stale > 0

    def test_correct_protocol_never_stale(self):
        for s in range(N_SEEDS):
            assert _run_once(s, buggy=False) == 42.0

    def test_strong_mode_hides_the_bug(self):
        """Under strong consistency even the buggy kernel works — which is
        exactly why the simulator defaults to relaxed mode."""
        for s in range(10):
            gpu = GPU(device=TINY_DEVICE, scheduler_policy="random", seed=s,
                      consistency="strong", max_resident_blocks=2)
            data = gpu.alloc("data", (1,), np.float64)
            flag = gpu.alloc("flag", (1,), np.int64)
            out = gpu.alloc("out", (1,), np.float64)
            gpu.launch(_writer_reader(buggy=True), grid_blocks=2,
                       threads_per_block=32, args=(data, flag, out))
            assert gpu.read("out")[0] == 42.0


class TestPublishHelper:
    def test_publish_orders_data_before_flag(self):
        """The publish() helper (used by every look-back) is fence-correct:
        a vector published under it is never observed stale."""
        def kernel(ctx, data, flag, out):
            if ctx.block_id == 0:
                publish(ctx, [(data, np.arange(8), np.full(8, 3.0))],
                        flag, 0, 2)
                yield ctx.syncthreads()
            else:
                yield from ctx.wait_until(flag, 0, lambda v: v >= 2)
                ctx.gstore(out, np.arange(8), ctx.gload(data, np.arange(8)))

        for s in range(N_SEEDS):
            gpu = GPU(device=TINY_DEVICE, scheduler_policy="random", seed=s,
                      max_resident_blocks=2)
            data = gpu.alloc("data", (8,), np.float64)
            flag = gpu.alloc("flag", (1,), np.int64)
            out = gpu.alloc("out", (8,), np.float64)
            gpu.launch(kernel, grid_blocks=2, threads_per_block=32,
                       args=(data, flag, out))
            assert (gpu.read("out") == 3.0).all(), f"seed {s}"

    def test_flag_values_monotone_under_drain(self):
        """Status bytes written 1 then 2 without fences in between must never
        be observed to regress (the drain logic drops superseded writes)."""
        observed = []

        def kernel(ctx, flag, log):
            if ctx.block_id == 0:
                ctx.gstore_scalar(flag, 0, 1)
                yield ctx.syncthreads()
                ctx.gstore_scalar(flag, 0, 2)
                yield ctx.syncthreads()
                ctx.gstore_scalar(flag, 0, 3)
            else:
                last = 0
                for _ in range(50):
                    v = ctx.gload_scalar(flag, 0)
                    observed.append((last, v))
                    assert v >= last, "status flag regressed"
                    last = v
                    yield ctx.syncthreads()

        for s in range(15):
            observed.clear()
            gpu = GPU(device=TINY_DEVICE, scheduler_policy="random", seed=s,
                      max_resident_blocks=2)
            flag = gpu.alloc("flag", (1,), np.int64)
            log = gpu.alloc("log", (1,), np.int64)
            gpu.launch(kernel, grid_blocks=2, threads_per_block=32,
                       args=(flag, log))
