"""The GPU facade: allocation helpers, readback, upload, launch plumbing."""

import numpy as np
import pytest

from repro.errors import InvalidAccessError
from repro.gpusim import GPU, TINY_DEVICE


class TestMemoryHelpers:
    def test_read_returns_copy(self):
        gpu = GPU()
        gpu.alloc("x", (4,), np.float64, fill=1.0)
        out = gpu.read("x")
        out[0] = 99.0
        assert gpu.read("x")[0] == 1.0

    def test_read_by_handle_or_name(self):
        gpu = GPU()
        buf = gpu.alloc("x", (4,), np.float64, fill=2.0)
        assert np.array_equal(gpu.read(buf), gpu.read("x"))

    def test_write_uploads(self):
        gpu = GPU()
        gpu.alloc("x", (2, 2), np.float64)
        gpu.write("x", np.arange(4.0).reshape(2, 2))
        assert gpu.read("x")[1, 1] == 3.0

    def test_write_reshapes_and_casts(self):
        gpu = GPU()
        gpu.alloc("x", (2, 2), np.float64)
        gpu.write("x", [1, 2, 3, 4])
        assert gpu.read("x").dtype == np.float64

    def test_buffer_lookup_unknown(self):
        with pytest.raises(InvalidAccessError):
            GPU().buffer("nope")

    def test_free_then_realloc(self):
        gpu = GPU()
        gpu.alloc("x", (4,), np.float64)
        gpu.free("x")
        gpu.alloc("x", (8,), np.float64)
        assert gpu.buffer("x").size == 8


class TestLaunchPlumbing:
    def test_kernel_name_defaults_to_function_name(self):
        gpu = GPU()

        def my_kernel(ctx):
            pass
        stats = gpu.launch(my_kernel, grid_blocks=1, threads_per_block=32)
        assert stats.name == "my_kernel"

    def test_kernel_name_override(self):
        gpu = GPU()
        stats = gpu.launch(lambda ctx: None, grid_blocks=1,
                           threads_per_block=32, name="custom")
        assert stats.name == "custom"

    def test_args_passed_through(self):
        gpu = GPU()
        seen = {}

        def k(ctx, x, y):
            seen["sum"] = x + y
        gpu.launch(k, grid_blocks=1, threads_per_block=32, args=(2, 3))
        assert seen["sum"] == 5

    def test_launches_recorded_in_order(self):
        gpu = GPU()
        for name in ("first", "second"):
            gpu.launch(lambda ctx: None, grid_blocks=1, threads_per_block=32,
                       name=name)
        assert [k.name for k in gpu.launches.kernels] == ["first", "second"]

    def test_device_attribute(self):
        assert GPU(device=TINY_DEVICE).device.name == "tiny-test-device"
