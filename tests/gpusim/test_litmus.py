"""Randomized message-passing litmus tests for the memory model.

Generates random publish/consume DAGs over blocks (every consumer waits on a
*lower-indexed* producer, so in-order dispatch with bounded residency cannot
deadlock — the same invariant the SAT algorithms rely on) and checks:

* with the correct *store → fence → flag* protocol, the final values equal
  the DAG's topological evaluation under **every** policy/residency/seed
  hypothesis throws at it;
* with the fence removed, violations are observable (pinned seeds).

This is the simulator-level generalization of the paper-specific hazard
tests: it certifies the substrate the look-back protocol runs on.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.gpusim import GPU, TINY_DEVICE


def make_kernel(deps, *, fence: bool):
    def litmus_kernel(ctx, data, flags):
        b = ctx.block_id
        acc = float(b + 1)
        for d in deps[b]:
            yield from ctx.wait_until(flags, d, lambda v: v >= 1)
            acc += ctx.gload_scalar(data, d)
        ctx.gstore_scalar(data, b, acc)
        if fence:
            ctx.threadfence()
        ctx.gstore_scalar(flags, b, 1)
        # Keep the block alive for a few yields so its store buffer drains
        # at yield points rather than at retirement (maximizing adversarial
        # reordering opportunities for the buggy variant).
        yield ctx.syncthreads()
        yield ctx.syncthreads()
    return litmus_kernel


def expected_values(deps):
    out = {}
    for b in range(len(deps)):
        out[b] = float(b + 1) + sum(out[d] for d in deps[b])
    return out


def run_litmus(deps, *, fence: bool, policy: str, seed: int,
               residency: int) -> np.ndarray:
    n = len(deps)
    gpu = GPU(device=TINY_DEVICE, scheduler_policy=policy, seed=seed,
              max_resident_blocks=residency)
    data = gpu.alloc("data", (n,), np.float64)
    flags = gpu.alloc("flags", (n,), np.int64)
    gpu.launch(make_kernel(deps, fence=fence), grid_blocks=n,
               threads_per_block=32, args=(data, flags))
    return gpu.read("data")


def deps_strategy(max_blocks: int = 8):
    """Random DAGs: block b depends on a subset of blocks < b."""
    def build(n, seed):
        rng = np.random.default_rng(seed)
        return [sorted(rng.choice(b, size=rng.integers(0, min(b, 3) + 1),
                                  replace=False).tolist()) if b else []
                for b in range(n)]
    return st.builds(build, st.integers(2, max_blocks),
                     st.integers(0, 2**31 - 1))


@settings(deadline=None, max_examples=30,
          suppress_health_check=[HealthCheck.too_slow])
@given(deps=deps_strategy(),
       policy=st.sampled_from(["round_robin", "random", "lifo"]),
       seed=st.integers(0, 2**31 - 1),
       residency=st.integers(1, 4))
def test_fenced_protocol_always_linearizes(deps, policy, seed, residency):
    values = run_litmus(deps, fence=True, policy=policy, seed=seed,
                        residency=residency)
    expect = expected_values(deps)
    for b, v in expect.items():
        assert values[b] == v, (deps, policy, seed, residency)


def test_unfenced_protocol_observably_broken():
    """Drop the fence and some schedule reads stale data.  The chain
    0 <- 1 <- 2 <- ... maximizes exposure; violations must appear within a
    modest seed budget (probabilistic, verified stable for this seed set)."""
    n = 6
    deps = [[b - 1] if b else [] for b in range(n)]
    expect = expected_values(deps)
    violations = 0
    for seed in range(60):
        values = run_litmus(deps, fence=False, policy="random", seed=seed,
                            residency=2)
        if any(values[b] != expect[b] for b in range(n)):
            violations += 1
    assert violations > 0, "relaxed mode failed to expose the missing fence"


def test_unfenced_protocol_fine_under_strong_consistency():
    n = 6
    deps = [[b - 1] if b else [] for b in range(n)]
    expect = expected_values(deps)
    for seed in range(10):
        gpu = GPU(device=TINY_DEVICE, scheduler_policy="random", seed=seed,
                  consistency="strong", max_resident_blocks=2)
        data = gpu.alloc("data", (n,), np.float64)
        flags = gpu.alloc("flags", (n,), np.int64)
        gpu.launch(make_kernel(deps, fence=False), grid_blocks=n,
                   threads_per_block=32, args=(data, flags))
        values = gpu.read("data")
        assert all(values[b] == expect[b] for b in range(n))


@pytest.mark.parametrize("residency", [1, 3])
def test_diamond_dag(residency):
    """The classic diamond: 3 depends on 1 and 2, both depending on 0."""
    deps = [[], [0], [0], [1, 2]]
    values = run_litmus(deps, fence=True, policy="lifo", seed=9,
                        residency=residency)
    assert values[3] == 4 + (2 + 1) + (3 + 1)
