"""Global memory: allocation, transaction counting, atomics, store buffers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AllocationError, InvalidAccessError
from repro.gpusim import (SEGMENT_BYTES, TINY_DEVICE, TITAN_V, GlobalMemory,
                          MemoryTraffic, StoreBuffer, count_warp_transactions)


class TestTransactions:
    def test_coalesced_float32_warp_costs_four_segments(self):
        addrs = np.arange(32) * 4
        assert count_warp_transactions(addrs) == 128 // SEGMENT_BYTES

    def test_coalesced_float64_warp_costs_eight_segments(self):
        addrs = np.arange(32) * 8
        assert count_warp_transactions(addrs) == 8

    def test_fully_strided_warp_costs_one_per_thread(self):
        addrs = np.arange(32) * 4096
        assert count_warp_transactions(addrs) == 32

    def test_broadcast_same_address_costs_one(self):
        addrs = np.full(32, 1024)
        assert count_warp_transactions(addrs) == 1

    def test_two_warps_counted_independently(self):
        # Both warps touch the same segment; each still pays for it.
        addrs = np.concatenate([np.arange(32) * 4, np.arange(32) * 4])
        assert count_warp_transactions(addrs) == 8

    def test_partial_trailing_warp(self):
        addrs = np.arange(40) * 4  # 32 + 8 threads
        assert count_warp_transactions(addrs) == 4 + 1

    def test_empty_access(self):
        assert count_warp_transactions(np.array([], dtype=np.int64)) == 0

    @given(st.lists(st.integers(0, 10_000), min_size=1, max_size=96))
    def test_bounds(self, offsets):
        """1 <= transactions <= thread count; every distinct segment is paid
        for at least once."""
        addrs = np.asarray(offsets) * 4
        tx = count_warp_transactions(addrs)
        assert 1 <= tx <= len(offsets)
        unique_segments = len(set(int(a) // SEGMENT_BYTES for a in addrs))
        assert tx >= unique_segments // max(1, (len(offsets) + 31) // 32)


class TestAllocation:
    def test_alloc_and_read_back(self):
        mem = GlobalMemory(TITAN_V)
        buf = mem.alloc("x", (4, 4), np.float64, fill=7.5)
        assert buf.shape == (4, 4)
        assert (buf.array == 7.5).all()

    def test_alloc_from_array(self):
        mem = GlobalMemory(TITAN_V)
        src = np.arange(12).reshape(3, 4)
        buf = mem.alloc("x", (3, 4), np.int64, fill=src)
        assert np.array_equal(buf.array, src)
        src[0, 0] = 99  # the buffer must own its data
        assert buf.array[0, 0] == 0

    def test_duplicate_name_rejected(self):
        mem = GlobalMemory(TITAN_V)
        mem.alloc("x", (2,), np.float64)
        with pytest.raises(AllocationError):
            mem.alloc("x", (2,), np.float64)

    def test_capacity_enforced(self):
        mem = GlobalMemory(TINY_DEVICE)
        with pytest.raises(AllocationError):
            mem.alloc("big", (TINY_DEVICE.global_mem_bytes,), np.float64)

    def test_free_reclaims_capacity(self):
        mem = GlobalMemory(TINY_DEVICE)
        nelem = TINY_DEVICE.global_mem_bytes // 8 - 1024
        mem.alloc("a", (nelem,), np.float64)
        mem.free("a")
        mem.alloc("b", (nelem,), np.float64)  # fits again

    def test_free_unknown_rejected(self):
        mem = GlobalMemory(TITAN_V)
        with pytest.raises(InvalidAccessError):
            mem.free("nope")

    def test_buffers_have_disjoint_address_ranges(self):
        mem = GlobalMemory(TITAN_V)
        a = mem.alloc("a", (100,), np.float64)
        b = mem.alloc("b", (100,), np.float64)
        assert b.base_address >= a.base_address + a.nbytes

    def test_out_of_bounds_read_rejected(self):
        mem = GlobalMemory(TITAN_V)
        buf = mem.alloc("x", (10,), np.float64)
        with pytest.raises(InvalidAccessError):
            mem.committed_read(buf, np.asarray([10]))


class TestAtomics:
    def test_atomic_add_returns_old_value(self):
        mem = GlobalMemory(TITAN_V)
        buf = mem.alloc("c", (1,), np.int64)
        traffic = MemoryTraffic()
        assert mem.atomic_add(buf, 0, 1, traffic) == 0
        assert mem.atomic_add(buf, 0, 1, traffic) == 1
        assert buf.array[0] == 2
        assert traffic.atomic_ops == 2

    def test_atomic_sequence_is_dense(self):
        """atomicAdd tile acquisition: values 0..k-1 each returned once."""
        mem = GlobalMemory(TITAN_V)
        buf = mem.alloc("c", (1,), np.int64)
        got = [mem.atomic_add(buf, 0, 1) for _ in range(50)]
        assert got == list(range(50))

    def test_atomic_bumps_commit_epoch(self):
        mem = GlobalMemory(TITAN_V)
        buf = mem.alloc("c", (1,), np.int64)
        before = mem.commit_epoch
        mem.atomic_add(buf, 0, 1)
        assert mem.commit_epoch == before + 1


class TestStoreBuffer:
    def _mem(self):
        mem = GlobalMemory(TITAN_V)
        return mem, mem.alloc("x", (16,), np.float64)

    def test_strong_mode_commits_immediately(self):
        mem, buf = self._mem()
        sb = StoreBuffer(memory=mem, mode="strong")
        sb.store(buf, np.asarray([3]), np.asarray([1.5]))
        assert buf.array[3] == 1.5

    def test_relaxed_holds_until_fence(self):
        mem, buf = self._mem()
        sb = StoreBuffer(memory=mem, mode="relaxed")
        sb.store(buf, np.asarray([3]), np.asarray([1.5]))
        assert buf.array[3] == 0.0        # not visible to others
        sb.fence()
        assert buf.array[3] == 1.5

    def test_read_own_writes(self):
        mem, buf = self._mem()
        sb = StoreBuffer(memory=mem, mode="relaxed")
        sb.store(buf, np.asarray([3]), np.asarray([1.5]))
        assert sb.overlay_read(buf, np.asarray([3]))[0] == 1.5

    def test_read_own_writes_respects_program_order(self):
        mem, buf = self._mem()
        sb = StoreBuffer(memory=mem, mode="relaxed")
        sb.store(buf, np.asarray([3]), np.asarray([1.0]))
        sb.store(buf, np.asarray([3]), np.asarray([2.0]))
        assert sb.overlay_read(buf, np.asarray([3]))[0] == 2.0

    def test_retire_flushes_everything(self):
        mem, buf = self._mem()
        sb = StoreBuffer(memory=mem, mode="relaxed")
        sb.store(buf, np.asarray([0, 1]), np.asarray([1.0, 2.0]))
        sb.retire()
        assert buf.array[0] == 1.0 and buf.array[1] == 2.0
        assert sb.pending_count == 0

    def test_drain_eventually_commits_without_fence(self):
        mem, buf = self._mem()
        sb = StoreBuffer(memory=mem, mode="relaxed",
                         rng=np.random.default_rng(0), max_age_yields=4)
        sb.store(buf, np.asarray([5]), np.asarray([9.0]))
        for _ in range(sb.max_age_yields + 1):
            sb.drain_at_yield()
        assert buf.array[5] == 9.0

    def test_drain_reordering_never_corrupts_final_state(self):
        """Even with adversarial newest-first draining, the final committed
        value per address must be the program-order last write."""
        for seed in range(20):
            mem, buf = self._mem()
            sb = StoreBuffer(memory=mem, mode="relaxed",
                             rng=np.random.default_rng(seed))
            rng = np.random.default_rng(seed + 100)
            last = {}
            for k in range(30):
                idx = int(rng.integers(0, 16))
                val = float(k)
                sb.store(buf, np.asarray([idx]), np.asarray([val]))
                last[idx] = val
                if rng.random() < 0.5:
                    sb.drain_at_yield()
            sb.retire()
            for idx, val in last.items():
                assert buf.array[idx] == val, f"seed {seed}, idx {idx}"

    def test_scalar_broadcast_store(self):
        mem, buf = self._mem()
        sb = StoreBuffer(memory=mem, mode="relaxed")
        sb.store(buf, np.asarray([1, 2, 3]), np.asarray([4.0]))
        sb.fence()
        assert (buf.array[1:4] == 4.0).all()


@settings(deadline=None, max_examples=25)
@given(seed=st.integers(0, 10_000), nwrites=st.integers(1, 40))
def test_store_buffer_linearizes_per_location(seed, nwrites):
    """Property: under any drain schedule the committed final state equals the
    program-order last write per location (vector writes included)."""
    mem = GlobalMemory(TITAN_V)
    buf = mem.alloc("x", (8,), np.float64)
    sb = StoreBuffer(memory=mem, mode="relaxed",
                     rng=np.random.default_rng(seed))
    rng = np.random.default_rng(seed ^ 0xABCDEF)
    expected = np.zeros(8)
    for k in range(nwrites):
        count = int(rng.integers(1, 5))
        idx = rng.choice(8, size=count, replace=False)
        vals = rng.normal(size=count)
        sb.store(buf, idx, vals)
        expected[idx] = vals
        if rng.random() < 0.6:
            sb.drain_at_yield()
    sb.retire()
    assert np.array_equal(buf.array, expected)
