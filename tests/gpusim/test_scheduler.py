"""Scheduler: dispatch order, residency, policies, deadlock detection."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, DeadlockError, KernelLaunchError
from repro.gpusim import GPU, TINY_DEVICE, TITAN_V, Scheduler


def chain_kernel(ctx, flags, counter, out, N):
    """Forward soft-sync chain via atomic tile acquisition (deadlock-free)."""
    tile = ctx.atomic_add(counter, 0, 1)
    if tile >= N:
        return
    prev = 0.0
    if tile > 0:
        yield from ctx.wait_until(flags, tile - 1, lambda v: v >= 1)
        prev = ctx.gload_scalar(out, tile - 1)
    ctx.gstore_scalar(out, tile, prev + tile)
    ctx.threadfence()
    ctx.gstore_scalar(flags, tile, 1)


def backward_chain_kernel(ctx, flags, N):
    """Block i waits on block i+1: deadlocks once residency < grid."""
    tile = ctx.block_id
    if tile < N - 1:
        yield from ctx.wait_until(flags, tile + 1, lambda v: v >= 1)
    ctx.threadfence()
    ctx.gstore_scalar(flags, tile, 1)


class TestBasics:
    def test_all_blocks_execute(self):
        gpu = GPU()
        buf = gpu.alloc("x", (100,), np.int64)

        def k(ctx, buf):
            ctx.gstore_scalar(buf, ctx.block_id, 1)
        stats = gpu.launch(k, grid_blocks=100, threads_per_block=32,
                           args=(buf,))
        assert stats.blocks_executed == 100
        assert gpu.read("x").sum() == 100

    def test_zero_grid_rejected(self):
        gpu = GPU()
        with pytest.raises(KernelLaunchError):
            gpu.launch(lambda ctx: None, grid_blocks=0, threads_per_block=32)

    def test_oversized_block_rejected(self):
        gpu = GPU()
        with pytest.raises(KernelLaunchError):
            gpu.launch(lambda ctx: None, grid_blocks=1, threads_per_block=2048)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            Scheduler(device=TITAN_V, policy="magic")

    def test_unknown_consistency_rejected(self):
        with pytest.raises(ConfigurationError):
            Scheduler(device=TITAN_V, consistency="weird")

    def test_launch_summary_accumulates(self):
        gpu = GPU()
        gpu.alloc("x", (4,), np.float64)
        for _ in range(3):
            gpu.launch(lambda ctx: None, grid_blocks=2, threads_per_block=32)
        assert gpu.launches.kernel_calls == 3
        gpu.reset_stats()
        assert gpu.launches.kernel_calls == 0


class TestSoftSync:
    N = 12

    def _run(self, policy, seed, max_resident):
        gpu = GPU(device=TINY_DEVICE, scheduler_policy=policy, seed=seed,
                  max_resident_blocks=max_resident)
        flags = gpu.alloc("flags", (self.N,), np.int64)
        counter = gpu.alloc("counter", (1,), np.int64)
        out = gpu.alloc("out", (self.N,), np.float64)
        gpu.launch(chain_kernel, grid_blocks=self.N, threads_per_block=32,
                   args=(flags, counter, out, self.N))
        return gpu.read("out")

    @pytest.mark.parametrize("policy", ["round_robin", "random", "lifo"])
    @pytest.mark.parametrize("max_resident", [1, 2, 5])
    def test_chain_correct_under_all_policies(self, policy, max_resident):
        expect = np.cumsum(np.arange(self.N, dtype=float))
        for seed in (0, 1, 2):
            assert np.array_equal(self._run(policy, seed, max_resident), expect)

    def test_backward_chain_deadlocks_with_bounded_residency(self):
        gpu = GPU(device=TINY_DEVICE, max_resident_blocks=2)
        flags = gpu.alloc("flags", (8,), np.int64)
        with pytest.raises(DeadlockError) as exc:
            gpu.launch(backward_chain_kernel, grid_blocks=8,
                       threads_per_block=32, args=(flags, 8))
        assert exc.value.pending_blocks > 0
        assert len(exc.value.resident_blocks) == 2

    def test_backward_chain_fine_with_full_residency(self):
        """The same kernel is correct when every block is resident — showing
        the deadlock is a residency interaction, exactly the hazard SKSS's
        atomic tile ordering removes."""
        gpu = GPU(device=TINY_DEVICE, max_resident_blocks=8)
        flags = gpu.alloc("flags", (8,), np.int64)
        gpu.launch(backward_chain_kernel, grid_blocks=8, threads_per_block=32,
                   args=(flags, 8))
        assert (gpu.read("flags") == 1).all()

    def test_spin_iterations_counted(self):
        gpu = GPU(device=TINY_DEVICE, max_resident_blocks=2)
        flags = gpu.alloc("flags", (4,), np.int64)
        counter = gpu.alloc("counter", (1,), np.int64)
        out = gpu.alloc("out", (4,), np.float64)
        stats = gpu.launch(chain_kernel, grid_blocks=4, threads_per_block=32,
                           args=(flags, counter, out, 4))
        assert stats.traffic.spin_iterations >= 0
        assert stats.traffic.fences == 4


class TestDeterminism:
    def test_same_seed_same_trace(self):
        def run():
            gpu = GPU(scheduler_policy="random", seed=42,
                      max_resident_blocks=3)
            flags = gpu.alloc("flags", (6,), np.int64)
            counter = gpu.alloc("counter", (1,), np.int64)
            out = gpu.alloc("out", (6,), np.float64)
            stats = gpu.launch(chain_kernel, grid_blocks=6,
                               threads_per_block=32,
                               args=(flags, counter, out, 6))
            return stats.scheduler_steps, stats.traffic.spin_iterations
        assert run() == run()


class TestSpinBound:
    """GPU(spin_bound=...): per-wait poll budget raising
    DeadlockSuspectedError — catches livelocks the all-blocks-spinning
    detector cannot prove."""

    def test_lone_spinner_trips_the_bound(self):
        from repro.errors import DeadlockSuspectedError

        gpu = GPU(spin_bound=1)
        flags = gpu.alloc("flags", (1,), np.int64)

        def k(ctx, flags):
            yield from ctx.wait_until(flags, 0, lambda v: v >= 1)
        with pytest.raises(DeadlockSuspectedError) as exc:
            gpu.launch(k, grid_blocks=1, threads_per_block=32, args=(flags,))
        assert exc.value.buffer_name == "flags"
        assert exc.value.spins > 1

    def test_livelock_beyond_scheduler_detection(self):
        """Block 1 keeps committing stores, so the scheduler's no-progress
        detector never fires; only the spin bound stops block 0."""
        from repro.errors import DeadlockSuspectedError

        gpu = GPU(spin_bound=25, max_resident_blocks=2)
        flags = gpu.alloc("flags", (1,), np.int64)
        data = gpu.alloc("data", (1,), np.float64)

        def k(ctx, flags, data):
            if ctx.block_id == 0:
                yield from ctx.wait_until(flags, 0, lambda v: v >= 1)
            else:
                i = 0
                while True:
                    ctx.gstore_scalar(data, 0, float(i))
                    ctx.threadfence()
                    i += 1
                    yield ctx.syncthreads()
        with pytest.raises(DeadlockSuspectedError):
            gpu.launch(k, grid_blocks=2, threads_per_block=32,
                       args=(flags, data))

    def test_unbounded_default_still_detects_true_deadlock(self):
        gpu = GPU(device=TINY_DEVICE, max_resident_blocks=2)
        flags = gpu.alloc("flags", (4,), np.int64)
        with pytest.raises(DeadlockError):
            gpu.launch(backward_chain_kernel, grid_blocks=4,
                       threads_per_block=32, args=(flags, 4))

    def test_generous_bound_does_not_misfire(self):
        gpu = GPU(spin_bound=200_000, max_resident_blocks=2)
        flags = gpu.alloc("flags", (4,), np.int64)
        counter = gpu.alloc("counter", (1,), np.int64)
        out = gpu.alloc("out", (4,), np.float64)
        stats = gpu.launch(chain_kernel, grid_blocks=4, threads_per_block=32,
                           args=(flags, counter, out, 4))
        assert stats.blocks_executed == 4
