"""Shared memory: allocation limits and bank-conflict accounting."""

import numpy as np
import pytest

from repro.errors import AllocationError, InvalidAccessError
from repro.gpusim import (NUM_BANKS, TITAN_V, MemoryTraffic, SharedMemory,
                          bank_conflict_cycles)


class TestBankConflicts:
    def test_consecutive_words_conflict_free(self):
        assert bank_conflict_cycles(np.arange(32)) == 0

    def test_same_bank_fully_serialized(self):
        # 32 accesses with stride 32: all land in bank 0 -> 31 replays.
        assert bank_conflict_cycles(np.arange(32) * 32) == 31

    def test_stride_two_is_two_way_conflict(self):
        assert bank_conflict_cycles(np.arange(32) * 2) == 1

    def test_broadcast_is_free(self):
        # All threads reading one address is served by broadcast.
        assert bank_conflict_cycles(np.full(32, 7)) == 0

    def test_two_warps_accounted_separately(self):
        offs = np.concatenate([np.arange(32) * 32, np.arange(32)])
        assert bank_conflict_cycles(offs) == 31

    def test_empty(self):
        assert bank_conflict_cycles(np.array([], dtype=np.int64)) == 0

    def test_num_banks_is_32(self):
        assert NUM_BANKS == 32


class TestSharedMemory:
    def _sm(self):
        return SharedMemory(TITAN_V, MemoryTraffic())

    def test_alloc_load_store_roundtrip(self):
        sm = self._sm()
        sm.alloc("t", 64)
        sm.store("t", np.arange(64), np.arange(64.0))
        assert np.array_equal(sm.load("t", np.arange(64)), np.arange(64.0))

    def test_capacity_enforced(self):
        sm = self._sm()
        words = TITAN_V.shared_mem_per_block // 4
        sm.alloc("a", words)
        with pytest.raises(AllocationError):
            sm.alloc("b", 1)

    def test_duplicate_name_rejected(self):
        sm = self._sm()
        sm.alloc("t", 8)
        with pytest.raises(AllocationError):
            sm.alloc("t", 8)

    def test_unknown_array_rejected(self):
        with pytest.raises(InvalidAccessError):
            self._sm().load("nope", np.asarray([0]))

    def test_out_of_bounds_rejected(self):
        sm = self._sm()
        sm.alloc("t", 8)
        with pytest.raises(InvalidAccessError):
            sm.load("t", np.asarray([8]))

    def test_traffic_counters(self):
        traffic = MemoryTraffic()
        sm = SharedMemory(TITAN_V, traffic)
        sm.alloc("t", 64)
        sm.store("t", np.arange(32), np.zeros(32))
        sm.load("t", np.arange(32))
        assert traffic.shared_write_requests == 32
        assert traffic.shared_read_requests == 32
        assert traffic.shared_bank_conflict_cycles == 0

    def test_conflicts_cross_array_boundaries_use_absolute_banks(self):
        """Banks are a property of the block's whole address space: an array
        starting at a non-zero base must account banks from its base."""
        traffic = MemoryTraffic()
        sm = SharedMemory(TITAN_V, traffic)
        sm.alloc("pad", 16)       # shifts the next array's base by 16 words
        sm.alloc("t", 32 * 32)
        sm.load("t", np.arange(32) * 32)  # bank (16 + 32k) % 32 == 16 always
        assert traffic.shared_bank_conflict_cycles == 31
