"""Event tracing: dispatch/step/spin/retire streams and the timeline view."""

import numpy as np
import pytest

from repro.errors import DeadlockError
from repro.gpusim import GPU, TINY_DEVICE, Tracer, render_timeline
from repro.gpusim import trace as T


def traced_gpu(**kw):
    tracer = Tracer()
    gpu = GPU(device=TINY_DEVICE, tracer=tracer, **kw)
    return gpu, tracer


def simple_kernel(ctx, buf):
    ctx.gstore_scalar(buf, ctx.block_id, 1.0)
    yield ctx.syncthreads()


class TestTracer:
    def test_dispatch_order_is_launch_order(self):
        gpu, tracer = traced_gpu(max_resident_blocks=2)
        buf = gpu.alloc("x", (6,), np.float64)
        gpu.launch(simple_kernel, grid_blocks=6, threads_per_block=32,
                   args=(buf,))
        assert tracer.dispatch_order() == list(range(6))

    def test_every_block_dispatches_and_retires(self):
        gpu, tracer = traced_gpu()
        buf = gpu.alloc("x", (5,), np.float64)
        gpu.launch(simple_kernel, grid_blocks=5, threads_per_block=32,
                   args=(buf,))
        counts = tracer.counts()
        assert counts[T.DISPATCH] == 5
        assert counts[T.RETIRE] == 5
        assert counts[T.LAUNCH] == 1
        assert counts[T.KERNEL_DONE] == 1

    def test_spin_events_recorded(self):
        gpu, tracer = traced_gpu(max_resident_blocks=2)
        flag = gpu.alloc("flag", (1,), np.int64)

        def waiter(ctx, flag):
            if ctx.block_id == 1:
                yield from ctx.wait_until(flag, 0, lambda v: v >= 1)
            else:
                yield ctx.syncthreads()
                ctx.threadfence()
                ctx.gstore_scalar(flag, 0, 1)
                ctx.threadfence()

        gpu.launch(waiter, grid_blocks=2, threads_per_block=32, args=(flag,))
        assert tracer.spin_profile().get(1, 0) >= 1
        assert 0 not in tracer.spin_profile()

    def test_kind_filter(self):
        tracer = Tracer(kinds=(T.RETIRE,))
        gpu = GPU(device=TINY_DEVICE, tracer=tracer)
        buf = gpu.alloc("x", (3,), np.float64)
        gpu.launch(simple_kernel, grid_blocks=3, threads_per_block=32,
                   args=(buf,))
        assert set(e.kind for e in tracer.events) == {T.RETIRE}

    def test_max_events_cap(self):
        tracer = Tracer(max_events=4)
        gpu = GPU(device=TINY_DEVICE, tracer=tracer)
        buf = gpu.alloc("x", (10,), np.float64)
        gpu.launch(simple_kernel, grid_blocks=10, threads_per_block=32,
                   args=(buf,))
        assert len(tracer.events) == 4

    def test_deadlock_traced(self):
        gpu, tracer = traced_gpu(max_resident_blocks=2)
        flags = gpu.alloc("flags", (4,), np.int64)

        def bad(ctx, flags):
            if ctx.block_id < 3:
                yield from ctx.wait_until(flags, ctx.block_id + 1,
                                          lambda v: v >= 1)
            ctx.gstore_scalar(flags, ctx.block_id, 1)

        with pytest.raises(DeadlockError):
            gpu.launch(bad, grid_blocks=4, threads_per_block=32, args=(flags,))
        assert len(tracer.of_kind(T.DEADLOCK)) == 1

    def test_clear(self):
        tracer = Tracer()
        tracer.emit(T.STEP, 0)
        tracer.clear()
        assert tracer.events == []

    def test_event_str(self):
        tracer = Tracer()
        tracer.emit(T.DISPATCH, 3, "hello")
        assert "dispatch" in str(tracer.events[0])
        assert "block=3" in str(tracer.events[0])


class TestTimeline:
    def test_render_contains_blocks_and_legend(self):
        gpu, tracer = traced_gpu(max_resident_blocks=2)
        buf = gpu.alloc("x", (4,), np.float64)
        gpu.launch(simple_kernel, grid_blocks=4, threads_per_block=32,
                   args=(buf,))
        art = render_timeline(tracer.events)
        assert "block    0" in art
        assert "legend" in art
        assert "D" in art and "R" in art

    def test_render_empty(self):
        assert render_timeline([]) == "(no events)"

    def test_block_row_has_dispatch_before_retire(self):
        gpu, tracer = traced_gpu()
        buf = gpu.alloc("x", (2,), np.float64)
        gpu.launch(simple_kernel, grid_blocks=2, threads_per_block=32,
                   args=(buf,))
        row = render_timeline(tracer.for_block(0)).splitlines()[0]
        assert row.index("D") < row.index("R")
