"""Uninitialized-read detection: CUDA global memory is not zeroed.

With ``detect_uninitialized=True`` the simulator raises on any device read of
a location never stored (unless the buffer was uploaded/memset via ``fill``).
The headline test runs *every* SAT algorithm in this mode: their publish
protocols must write every value before anyone reads it.
"""

import numpy as np
import pytest

from repro.errors import RaceConditionError
from repro.gpusim import GPU
from repro.sat import ALGORITHMS, get_algorithm, sat_reference


class TestDetector:
    def test_read_before_write_raises(self):
        gpu = GPU(detect_uninitialized=True)
        buf = gpu.alloc("x", (8,), np.float64)  # no fill: undefined contents

        def k(ctx, buf):
            ctx.gload(buf, ctx.tids[:4])
        with pytest.raises(RaceConditionError, match="uninitialized"):
            gpu.launch(k, grid_blocks=1, threads_per_block=32, args=(buf,))

    def test_write_then_read_ok(self):
        gpu = GPU(detect_uninitialized=True, consistency="strong")
        buf = gpu.alloc("x", (8,), np.float64)

        def k(ctx, buf):
            ctx.gstore(buf, ctx.tids[:4], np.ones(4))
            assert (ctx.gload(buf, ctx.tids[:4]) == 1).all()
        gpu.launch(k, grid_blocks=1, threads_per_block=32, args=(buf,))

    def test_own_pending_write_satisfies_read(self):
        """Relaxed mode: a block reading its *own* uncommitted store is fine."""
        gpu = GPU(detect_uninitialized=True, consistency="relaxed")
        buf = gpu.alloc("x", (4,), np.float64)

        def k(ctx, buf):
            ctx.gstore_scalar(buf, 2, 7.0)
            assert ctx.gload_scalar(buf, 2) == 7.0
        gpu.launch(k, grid_blocks=1, threads_per_block=32, args=(buf,))

    def test_filled_buffer_is_defined(self):
        gpu = GPU(detect_uninitialized=True)
        buf = gpu.alloc("x", (8,), np.float64, fill=0)

        def k(ctx, buf):
            ctx.gload(buf, ctx.tids[:8])
        gpu.launch(k, grid_blocks=1, threads_per_block=32, args=(buf,))

    def test_atomic_on_uninitialized_counter_raises(self):
        gpu = GPU(detect_uninitialized=True)
        buf = gpu.alloc("c", (1,), np.int64)  # forgot the memset

        def k(ctx, buf):
            ctx.atomic_add(buf, 0, 1)
        with pytest.raises(RaceConditionError):
            gpu.launch(k, grid_blocks=1, threads_per_block=32, args=(buf,))

    def test_partial_initialization_tracked_per_element(self):
        gpu = GPU(detect_uninitialized=True, consistency="strong")
        buf = gpu.alloc("x", (8,), np.float64)

        def writer(ctx, buf):
            ctx.gstore(buf, np.arange(4), np.ones(4))
        gpu.launch(writer, grid_blocks=1, threads_per_block=32, args=(buf,))

        def reader_ok(ctx, buf):
            ctx.gload(buf, np.arange(4))
        gpu.launch(reader_ok, grid_blocks=1, threads_per_block=32, args=(buf,))

        def reader_bad(ctx, buf):
            ctx.gload(buf, np.arange(8))
        with pytest.raises(RaceConditionError):
            gpu.launch(reader_bad, grid_blocks=1, threads_per_block=32,
                       args=(buf,))

    def test_detection_off_by_default(self):
        gpu = GPU()
        buf = gpu.alloc("x", (8,), np.float64)

        def k(ctx, buf):
            ctx.gload(buf, ctx.tids[:8])
        gpu.launch(k, grid_blocks=1, threads_per_block=32, args=(buf,))


@pytest.mark.parametrize("name", sorted(ALGORITHMS))
def test_every_algorithm_clean_under_detection(name, small_matrix):
    """No SAT algorithm may read a scratch value before it was published."""
    gpu = GPU(seed=3, scheduler_policy="random", detect_uninitialized=True)
    res = get_algorithm(name).run(small_matrix, gpu)
    assert np.array_equal(res.sat, sat_reference(small_matrix))
