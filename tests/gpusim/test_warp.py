"""Warp primitives: shuffles and the paper's warp prefix-sum algorithm."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.gpusim import (MemoryTraffic, shfl_idx, shfl_up,
                          warp_exclusive_scan, warp_inclusive_scan,
                          warp_reduce_sum)


class TestShfl:
    def test_shfl_up_shifts_lanes(self):
        out = shfl_up(np.arange(32.0), 1)
        assert out[0] == 0  # lane < delta keeps its own value
        assert np.array_equal(out[1:], np.arange(31.0))

    def test_shfl_up_delta_zero_is_identity(self):
        vals = np.arange(32.0)
        assert np.array_equal(shfl_up(vals, 0), vals)

    def test_shfl_up_multiwarp_independent(self):
        vals = np.concatenate([np.zeros(32), np.ones(32)])
        out = shfl_up(vals, 4)
        # Lane 32+0..3 keep warp-1 values, not warp-0 spillover.
        assert (out[32:36] == 1).all()

    def test_shfl_idx_broadcasts(self):
        out = shfl_idx(np.arange(32.0), 5)
        assert (out == 5.0).all()

    def test_shuffle_counted(self):
        t = MemoryTraffic()
        shfl_up(np.arange(32.0), 1, t)
        assert t.shuffle_ops == 32

    def test_partial_warp_rejected(self):
        with pytest.raises(ConfigurationError):
            shfl_up(np.arange(20.0), 1)


class TestWarpScan:
    def test_figure4_example(self):
        """Figure 4: w = 8 prefix sums (reduced warp size)."""
        vals = np.array([3, 1, 4, 1, 5, 9, 2, 6], dtype=float)
        out = warp_inclusive_scan(vals, warp_size=8)
        assert np.array_equal(out, np.cumsum(vals))

    def test_inclusive_matches_cumsum_per_warp(self):
        rng = np.random.default_rng(0)
        vals = rng.integers(0, 100, size=96).astype(float)
        out = warp_inclusive_scan(vals)
        for w in range(3):
            seg = slice(32 * w, 32 * (w + 1))
            assert np.array_equal(out[seg], np.cumsum(vals[seg]))

    def test_last_lane_holds_warp_sum(self):
        vals = np.ones(32)
        assert warp_inclusive_scan(vals)[-1] == 32

    def test_exclusive_scan(self):
        vals = np.arange(1.0, 33.0)
        out = warp_exclusive_scan(vals)
        assert out[0] == 0
        assert np.array_equal(out[1:], np.cumsum(vals)[:-1])

    def test_reduce_broadcasts_sum(self):
        vals = np.arange(32.0)
        out = warp_reduce_sum(vals)
        assert (out == vals.sum()).all()

    def test_scan_uses_log2w_shuffle_rounds(self):
        t = MemoryTraffic()
        warp_inclusive_scan(np.zeros(32), t)
        assert t.shuffle_ops == 5 * 32  # log2(32) rounds, one shfl per lane

    @given(st.lists(st.integers(-1000, 1000), min_size=32, max_size=32))
    def test_property_matches_cumsum(self, values):
        vals = np.asarray(values, dtype=float)
        assert np.array_equal(warp_inclusive_scan(vals), np.cumsum(vals))

    @given(st.integers(1, 4), st.integers(0, 2**31 - 1))
    def test_property_multiwarp(self, nwarps, seed):
        rng = np.random.default_rng(seed)
        vals = rng.normal(size=32 * nwarps)
        out = warp_inclusive_scan(vals)
        expect = vals.reshape(nwarps, 32).cumsum(axis=1).reshape(-1)
        assert np.allclose(out, expect)
