"""Compiled flat-kernel engine: bit-identity, routing, no-Numba fallback.

The bit-identity contract is pinned with ``jit=False`` (same kernel source,
pure Python) so it holds on Numba-free hosts; a separate leg re-runs the
core equivalence under the real njit kernels when Numba is importable.
"""

import sys
import warnings

import numpy as np
import pytest

from repro import ALGORITHMS, sat_reference
from repro.errors import ConfigurationError
from repro.hostexec import compiled as compiled_mod
from repro.hostexec.compiled import (FLAT_KERNELS, NON_TILE_ALGORITHMS,
                                     CompiledEngine, _canonical_algorithm,
                                     _flat_double_scan, _pairwise,
                                     compiled_sat, flat_kernel_for,
                                     host_compiled_sat, is_compiled_engine,
                                     numba_available)
from repro.sat.registry import compute_sat, get_algorithm, host_sat

DTYPES = ("uint8", "int32", "float32", "float64")
#: Aligned, ragged-both-edges, and ragged-one-edge rectangles (W=16).
SHAPES = ((48, 48), (33, 65), (70, 48))


def _matrix(shape, dtype, seed=0):
    """Random values; floats get fractional parts so FP order matters."""
    rng = np.random.default_rng(seed)
    if np.issubdtype(np.dtype(dtype), np.integer):
        info = np.iinfo(dtype)
        return rng.integers(0, min(100, info.max),
                            size=shape).astype(dtype)
    return ((rng.random(shape) - 0.25) * 100).astype(dtype)


@pytest.fixture(scope="module")
def pure_engine():
    with CompiledEngine(jit=False) as engine:
        yield engine


class TestBitIdentity:
    """The hard gate: all 7 algorithms x 4 dtypes x ragged shapes."""

    @pytest.mark.parametrize("dtype", DTYPES)
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_matches_serial_host_path(self, pure_engine, algorithm, dtype):
        alg = get_algorithm(algorithm, tile_width=16)
        for shape in SHAPES:
            a = _matrix(shape, dtype)
            want = alg.run_host(a)
            got = pure_engine.compute(a, algorithm=algorithm, tile_width=16)
            assert got.dtype == want.dtype
            assert np.array_equal(got, want), (algorithm, dtype, shape)

    def test_plain_scan_is_unpadded_reference(self, pure_engine):
        a = _matrix((37, 53), "float32", seed=3)
        got = pure_engine.compute(a, algorithm="2R2W")
        assert np.array_equal(got, sat_reference(a))

    def test_algorithm_none_means_reference_scan(self, pure_engine):
        a = _matrix((20, 31), "float64", seed=4)
        got = pure_engine.compute(a, algorithm=None)
        assert np.array_equal(got, sat_reference(a))

    def test_negative_floats_and_large_scale(self, pure_engine):
        rng = np.random.default_rng(9)
        a = ((rng.random((50, 34)) - 0.5) * 1e6).astype(np.float32)
        want = get_algorithm("1R1W-SKSS-LB", tile_width=16).run_host(a)
        got = pure_engine.compute(a, algorithm="1R1W-SKSS-LB", tile_width=16)
        assert np.array_equal(got, want)


class TestPairwise:
    """The replicated NumPy pairwise reduction, across its regime boundaries."""

    @pytest.mark.parametrize("n", [1, 3, 7, 8, 9, 15, 16, 100, 127, 128,
                                   129, 255, 256, 1000])
    def test_matches_numpy_sum(self, n):
        rng = np.random.default_rng(n)
        a = (rng.random(n).astype(np.float32) - 0.25) * 3.0
        assert _pairwise(a) == a.sum()

    def test_double_scan_matches_cumsum(self):
        a = (np.random.default_rng(1).random((45, 61)) - 0.5).astype(
            np.float32)
        out = np.empty_like(a)
        _flat_double_scan(a, out)
        assert np.array_equal(out, a.cumsum(axis=0).cumsum(axis=1))


class TestComputeSemantics:
    def test_out_buffer_aligned(self, pure_engine):
        a = _matrix((32, 32), "float64")
        out = np.empty((32, 32), dtype=np.float64)
        res = pure_engine.compute(a, algorithm="1R1W", tile_width=16, out=out)
        assert res is out
        assert np.array_equal(
            out, get_algorithm("1R1W", tile_width=16).run_host(a))

    def test_out_buffer_ragged(self, pure_engine):
        a = _matrix((33, 40), "int32")
        out = np.empty((33, 40), dtype=np.int64)
        res = pure_engine.compute(a, algorithm="1R1W-SKSS", tile_width=16,
                                  out=out)
        assert res is out
        assert np.array_equal(out, sat_reference(a).astype(np.int64))

    def test_bad_out_rejected(self, pure_engine):
        a = _matrix((16, 16), "float64")
        with pytest.raises(ConfigurationError):
            pure_engine.compute(a, tile_width=16,
                                out=np.empty((16, 16), dtype=np.float32))

    def test_non_2d_rejected(self, pure_engine):
        with pytest.raises(ConfigurationError):
            pure_engine.compute(np.zeros(8))

    def test_closed_engine_rejected(self):
        engine = CompiledEngine(jit=False)
        engine.close()
        with pytest.raises(ConfigurationError):
            engine.compute(np.zeros((4, 4)), tile_width=4)

    def test_bad_workers_rejected(self):
        with pytest.raises(ConfigurationError):
            CompiledEngine(workers=0, jit=False)

    def test_carry_and_diagonal_caches_are_reused(self, pure_engine):
        a = _matrix((32, 48), "float64", seed=7)
        first = pure_engine.compute(a, algorithm="2R1W", tile_width=16)
        n_carries = len(pure_engine._carries)
        n_diags = len(pure_engine._diags)
        second = pure_engine.compute(a, algorithm="2R1W", tile_width=16)
        assert np.array_equal(first, second)
        assert len(pure_engine._carries) == n_carries
        assert len(pure_engine._diags) == n_diags


class TestFlatKernelRegistry:
    def test_tile_five_have_flat_kernels(self):
        assert set(FLAT_KERNELS) == set(ALGORITHMS) - set(NON_TILE_ALGORITHMS)

    def test_alias_resolution(self):
        assert flat_kernel_for("skss-lb").name == "1R1W-SKSS-LB"
        assert flat_kernel_for("nehab").name == "2R1W"

    def test_plain_scan_has_no_flat_kernel(self):
        with pytest.raises(ConfigurationError):
            flat_kernel_for("2R2W")

    def test_canonical_none_is_reference(self):
        assert _canonical_algorithm(None) == "2R2W"

    def test_is_compiled_engine(self):
        assert is_compiled_engine("compiled")
        assert is_compiled_engine(CompiledEngine(jit=False))
        assert not is_compiled_engine("wavefront")
        assert not is_compiled_engine(None)


@pytest.fixture
def no_numba(monkeypatch):
    """Simulate an uninstalled numba (find_spec fails on a None entry)."""
    monkeypatch.setitem(sys.modules, "numba", None)
    compiled_mod._reset_numba_probe()
    yield
    compiled_mod._reset_numba_probe()


class TestNoNumbaFallback:
    def test_jit_engine_requires_numba(self, no_numba):
        with pytest.raises(ConfigurationError, match="requires numba"):
            CompiledEngine()

    def test_compiled_sat_requires_numba(self, no_numba):
        with pytest.raises(ConfigurationError):
            compiled_sat(np.zeros((4, 4)))

    def test_string_routing_degrades_to_wavefront(self, no_numba):
        a = _matrix((33, 65), "float32")
        want = get_algorithm("1R1W-SKSS-LB", tile_width=16).run_host(a)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            got = host_sat(a, algorithm="1R1W-SKSS-LB", tile_width=16,
                           engine="compiled")
        assert np.array_equal(got, want)
        ours = [w for w in caught if issubclass(w.category, RuntimeWarning)
                and "falls back" in str(w.message)]
        assert len(ours) == 1

    def test_warning_fires_exactly_once_per_process(self, no_numba):
        a = _matrix((32, 32), "int32")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            for _ in range(3):
                host_sat(a, algorithm="1R1W", tile_width=16,
                         engine="compiled")
        ours = [w for w in caught if "falls back" in str(w.message)]
        assert len(ours) == 1

    def test_plain_scan_degrades_to_serial(self, no_numba):
        a = _matrix((19, 27), "float64")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            got = host_sat(a, algorithm="2R2W", engine="compiled")
            got_none = host_sat(a, engine="compiled")
        assert np.array_equal(got, sat_reference(a))
        assert np.array_equal(got_none, sat_reference(a))

    def test_numba_available_is_false_and_cached(self, no_numba):
        assert not numba_available()
        assert compiled_mod._numba_ok is False

    def test_explicit_pure_engine_still_works(self, no_numba):
        a = _matrix((33, 40), "uint8")
        with CompiledEngine(jit=False) as engine:
            got = engine.compute(a, algorithm="2R1W", tile_width=16)
        assert np.array_equal(got, sat_reference(a).astype(np.int64))


class TestRouting:
    """engine='compiled' through every public entry point (works with or
    without Numba — the fallback keeps results bit-identical)."""

    @staticmethod
    def _quiet():
        import contextlib

        @contextlib.contextmanager
        def quiet():
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                yield
        return quiet()

    def test_run_host_with_engine_instance(self):
        a = _matrix((40, 33), "float32", seed=2)
        alg = get_algorithm("1R1W-SKSS", tile_width=16)
        got = alg.run_host(a, engine=CompiledEngine(jit=False))
        assert np.array_equal(got, alg.run_host(a))

    def test_host_sat_with_engine_instance(self):
        a = _matrix((33, 48), "float64", seed=5)
        got = host_sat(a, algorithm="2R1W", tile_width=16,
                       engine=CompiledEngine(jit=False))
        want = get_algorithm("2R1W", tile_width=16).run_host(a)
        assert np.array_equal(got, want)

    def test_host_compiled_sat_none_algorithm(self):
        a = _matrix((21, 34), "int32", seed=6)
        with self._quiet():
            got = host_compiled_sat(a)
        assert np.array_equal(got, sat_reference(a))

    def test_compute_sat_records_compiled_engine(self):
        a = _matrix((48, 48), "float64", seed=8)
        with self._quiet():
            res = compute_sat(a, simulate=False, engine="compiled",
                              tile_width=16)
        assert res.params["engine"] == "compiled"
        want = get_algorithm("1R1W-SKSS-LB", tile_width=16).run_host(a)
        assert np.array_equal(res.sat, want)

    def test_out_of_core_band_routing(self):
        from repro.sat.outofcore import out_of_core_sat
        a = _matrix((70, 41), "float32", seed=11)
        with self._quiet():
            got = out_of_core_sat(a, band_rows=24, algorithm="1R1W-SKSS-LB",
                                  tile_width=16, engine="compiled")
        want = out_of_core_sat(a, band_rows=24, algorithm="1R1W-SKSS-LB",
                               tile_width=16)
        assert np.array_equal(got, want)


class TestJittedLeg:
    """Real-Numba equivalence (skipped wherever numba is not installed)."""

    @pytest.fixture(scope="class")
    def jit_engine(self):
        pytest.importorskip("numba")
        with CompiledEngine() as engine:
            yield engine

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_jitted_matches_serial(self, jit_engine, algorithm):
        alg = get_algorithm(algorithm, tile_width=16)
        for dtype in ("int32", "float32"):
            a = _matrix((33, 65), dtype, seed=13)
            got = jit_engine.compute(a, algorithm=algorithm, tile_width=16)
            assert np.array_equal(got, alg.run_host(a)), (algorithm, dtype)

    def test_parallel_variant_bit_identical(self):
        pytest.importorskip("numba")
        a = _matrix((96, 70), "float64", seed=17)
        want = get_algorithm("1R1W-SKSS-LB", tile_width=16).run_host(a)
        with CompiledEngine(workers=2) as engine:
            got = engine.compute(a, algorithm="1R1W-SKSS-LB", tile_width=16)
        assert np.array_equal(got, want)

    def test_compiled_sat_one_shot(self):
        pytest.importorskip("numba")
        a = _matrix((40, 40), "float32", seed=19)
        want = get_algorithm("1R1W-SKSS-LB", tile_width=16).run_host(a)
        assert np.array_equal(compiled_sat(a, tile_width=16), want)
