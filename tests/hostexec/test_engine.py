"""Equivalence, bit-identity, determinism and API tests for the wavefront
host engine.

The central claims under test (see ``docs/ARCHITECTURE.md``):

* every tile-based algorithm's wavefront execution equals the NumPy
  reference SAT (exact, on integer-valued inputs);
* wavefront results are **bit-identical** to the algorithm's own serial
  ``run_host`` loop, for any worker count — batching a chunk of tiles into
  one ``(k, W, W)`` NumPy call sequence does not change a single bit;
* two runs of the same engine are bit-identical (scheduling order does not
  leak into results).
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.hostexec import (WavefrontEngine, default_workers, resolve_engine,
                            shared_engine, wavefront_sat)
from repro.sat.reference import sat_reference
from repro.sat.registry import get_algorithm

TILE_ALGORITHMS = ["2R1W", "1R1W", "(1+r)R1W", "1R1W-SKSS", "1R1W-SKSS-LB"]


def matrix(n, seed=7, integer=True):
    rng = np.random.default_rng(seed)
    if integer:
        return rng.integers(0, 100, size=(n, n)).astype(np.float64)
    return rng.standard_normal((n, n))


@pytest.mark.parametrize("algorithm", TILE_ALGORITHMS)
@pytest.mark.parametrize("tile_width", [8, 16, 32])
@pytest.mark.parametrize("workers", [1, 2, 4])
def test_matches_reference(algorithm, tile_width, workers):
    a = matrix(96)
    with WavefrontEngine(workers=workers) as eng:
        sat = eng.compute(a, algorithm=algorithm, tile_width=tile_width)
    assert np.array_equal(sat, sat_reference(a))


@pytest.mark.parametrize("algorithm", TILE_ALGORITHMS)
@pytest.mark.parametrize("workers", [1, 2, 4])
def test_bit_identical_to_serial_host(algorithm, workers):
    # Float inputs: round-off patterns must match the serial loop exactly.
    a = matrix(128, integer=False)
    serial = get_algorithm(algorithm).run_host(a)
    with WavefrontEngine(workers=workers) as eng:
        assert np.array_equal(eng.compute(a, algorithm=algorithm), serial)


def test_two_runs_bit_identical():
    a = matrix(256, integer=False)
    with WavefrontEngine(workers=4) as eng:
        first = eng.compute(a)
        second = eng.compute(a)
    assert np.array_equal(first, second)


def test_run_host_engine_parameter():
    a = matrix(96)
    alg = get_algorithm("1R1W-SKSS-LB")
    with WavefrontEngine(workers=2) as eng:
        assert np.array_equal(alg.run_host(a, engine=eng), alg.run_host(a))


def test_run_host_rejects_non_tile_algorithm():
    a = matrix(96)
    with pytest.raises(ConfigurationError,
                       match="does not support algorithm '2R2W'"):
        get_algorithm("2R2W").run_host(a, engine="wavefront")


def test_algorithm_aliases_resolve():
    a = matrix(64)
    with WavefrontEngine(workers=1) as eng:
        sat = eng.compute(a, algorithm="skss-lb")
    assert np.array_equal(sat, sat_reference(a))


class TestBatchedAPI:
    def test_compute_many_equals_one_shot(self):
        arrays = [matrix(96, seed=s, integer=False) for s in range(4)]
        with WavefrontEngine(workers=2) as eng:
            batched = eng.compute_many(arrays)
        for a, sat in zip(arrays, batched):
            assert np.array_equal(sat, wavefront_sat(a, workers=2))

    def test_compute_many_mixed_algorithms_independent(self):
        a = matrix(96)
        with WavefrontEngine(workers=2) as eng:
            for algorithm in TILE_ALGORITHMS:
                sat = eng.compute(a, algorithm=algorithm)
                assert np.array_equal(sat, sat_reference(a))

    def test_stream_yields_in_order(self):
        arrays = [matrix(64, seed=s) for s in range(3)]
        with WavefrontEngine(workers=2) as eng:
            sats = list(eng.stream(iter(arrays)))
        assert len(sats) == 3
        for a, sat in zip(arrays, sats):
            assert np.array_equal(sat, sat_reference(a))

    def test_stream_fresh_buffers_by_default(self):
        arrays = [matrix(64, seed=s) for s in range(2)]
        with WavefrontEngine(workers=1) as eng:
            first, second = list(eng.stream(arrays))
        assert first is not second
        assert np.array_equal(first, sat_reference(arrays[0]))

    def test_stream_reuse_output_recycles_buffer(self):
        arrays = [matrix(64, seed=s) for s in range(3)]
        with WavefrontEngine(workers=1) as eng:
            buffers = []
            for a, sat in zip(arrays, eng.stream(arrays, reuse_output=True)):
                buffers.append(sat)
                assert np.array_equal(sat, sat_reference(a))
        assert buffers[0] is buffers[1] is buffers[2]

    def test_plan_and_carry_caches_are_reused(self):
        with WavefrontEngine(workers=2) as eng:
            eng.compute(matrix(96))
            plans = {k: id(v) for k, v in eng._plans.items()}
            carries = {k: id(v) for k, v in eng._carries.items()}
            eng.compute(matrix(96, seed=9))
            assert {k: id(v) for k, v in eng._plans.items()} == plans
            assert {k: id(v) for k, v in eng._carries.items()} == carries


class TestOutParameter:
    def test_out_receives_result(self):
        a = matrix(64)
        out = np.empty_like(a)
        with WavefrontEngine(workers=1) as eng:
            result = eng.compute(a, out=out)
        assert result is out
        assert np.array_equal(out, sat_reference(a))

    def test_out_wrong_shape_rejected(self):
        with WavefrontEngine(workers=1) as eng:
            with pytest.raises(ConfigurationError, match="out"):
                eng.compute(matrix(64), out=np.empty((32, 32)))

    def test_out_wrong_dtype_rejected(self):
        with WavefrontEngine(workers=1) as eng:
            with pytest.raises(ConfigurationError, match="out"):
                eng.compute(matrix(64),
                            out=np.empty((64, 64), dtype=np.float32))

    def test_out_non_contiguous_rejected(self):
        backing = np.empty((64, 128))
        with WavefrontEngine(workers=1) as eng:
            with pytest.raises(ConfigurationError, match="out"):
                eng.compute(matrix(64), out=backing[:, ::2])

    def test_input_not_modified(self):
        a = matrix(64)
        snapshot = a.copy()
        with WavefrontEngine(workers=2) as eng:
            sat = eng.compute(a)
        assert np.array_equal(a, snapshot)
        assert sat is not a


class TestValidation:
    def test_non_square_supported(self):
        rng = np.random.default_rng(7)
        a = rng.integers(0, 9, size=(64, 32)).astype(float)
        with WavefrontEngine(workers=1) as eng:
            sat = eng.compute(a)
        assert sat.shape == a.shape
        assert np.array_equal(sat, a.cumsum(axis=0).cumsum(axis=1))

    def test_unaligned_size_supported(self):
        rng = np.random.default_rng(8)
        a = rng.integers(0, 9, size=(40, 40)).astype(float)
        with WavefrontEngine(workers=1) as eng:
            sat = eng.compute(a, tile_width=32)
        assert sat.shape == a.shape
        assert np.array_equal(sat, a.cumsum(axis=0).cumsum(axis=1))

    def test_non_tile_algorithm_rejected(self):
        with WavefrontEngine(workers=1) as eng:
            with pytest.raises(ConfigurationError):
                eng.compute(matrix(64), algorithm="2R2W")

    def test_unknown_algorithm_rejected(self):
        with WavefrontEngine(workers=1) as eng:
            with pytest.raises(ConfigurationError):
                eng.compute(matrix(64), algorithm="no-such-algorithm")

    def test_bad_worker_count_rejected(self):
        with pytest.raises(ConfigurationError):
            WavefrontEngine(workers=0)
        with pytest.raises(ConfigurationError):
            WavefrontEngine(workers=-2)

    def test_closed_engine_refuses_parallel_compute(self):
        eng = WavefrontEngine(workers=2)
        eng.compute(matrix(128, seed=1), tile_width=8)  # warm
        eng.close()
        with pytest.raises(ConfigurationError, match="closed"):
            # Large enough to need the pool (many chunks).
            eng.compute(matrix(512), tile_width=16)


class TestWorkers:
    def test_default_workers_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert default_workers() == 3

    def test_default_workers_env_invalid(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "many")
        with pytest.raises(ConfigurationError):
            default_workers()

    def test_default_workers_env_nonpositive(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "0")
        with pytest.raises(ConfigurationError):
            default_workers()

    def test_default_workers_falls_back_to_cpu_count(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert default_workers() >= 1

    def test_engine_uses_env_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "2")
        assert WavefrontEngine().workers == 2


class TestResolution:
    def test_resolve_instance_passthrough(self):
        with WavefrontEngine(workers=1) as eng:
            assert resolve_engine(eng) is eng

    def test_resolve_wavefront_returns_shared(self):
        assert resolve_engine("wavefront") is shared_engine()

    def test_shared_engine_recreated_after_close(self):
        first = shared_engine()
        first.close()
        second = shared_engine()
        assert second is not first
        assert not second._closed

    def test_resolve_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_engine("gpu")


def test_wavefront_sat_one_shot():
    a = matrix(96)
    assert np.array_equal(wavefront_sat(a, workers=2), sat_reference(a))
    assert np.array_equal(wavefront_sat(a), sat_reference(a))
