"""Host-engine registry: capability flags, dynamic lists, error messages."""

import sys

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.hostexec.registry import (ENGINES, EngineSpec,
                                     engines_for_algorithm, get_engine_spec,
                                     known_engines, unknown_engine_error)


class TestRegistryContents:
    def test_all_five_engines_registered(self):
        assert known_engines() == ("serial", "wavefront", "parallel",
                                   "compiled", "distributed")

    def test_specs_are_self_named(self):
        for name, spec in ENGINES.items():
            assert spec.name == name

    def test_bit_identity_flags(self):
        assert ENGINES["serial"].bit_identical
        assert ENGINES["wavefront"].bit_identical
        assert ENGINES["compiled"].bit_identical
        assert not ENGINES["parallel"].bit_identical
        assert not ENGINES["distributed"].bit_identical  # band float reorder

    def test_wavefront_runs_only_tile_algorithms(self):
        from repro.hostexec.kernels import KERNELS
        spec = ENGINES["wavefront"]
        assert spec.algorithms == tuple(KERNELS)
        assert spec.supports_algorithm("1R1W-SKSS-LB")
        assert not spec.supports_algorithm("2R2W")

    def test_universal_engines_support_everything(self):
        from repro import ALGORITHMS
        for name in ("serial", "parallel", "compiled", "distributed"):
            for alg in ALGORITHMS:
                assert ENGINES[name].supports_algorithm(alg)

    def test_compiled_declares_dependency_and_fallback(self):
        spec = ENGINES["compiled"]
        assert spec.requires == "numba"
        assert spec.fallback == "wavefront"
        for name in ("serial", "wavefront", "parallel", "distributed"):
            assert ENGINES[name].requires is None
            assert ENGINES[name].available()

    def test_engines_for_algorithm(self):
        assert engines_for_algorithm("2R2W") == ("serial", "parallel",
                                                 "compiled", "distributed")
        assert engines_for_algorithm("1R1W") == ("serial", "wavefront",
                                                 "parallel", "compiled",
                                                 "distributed")


class TestCapabilityQueries:
    def test_dtypes_none_means_any(self):
        for spec in ENGINES.values():
            assert spec.dtypes is None
            assert spec.supports_dtype(np.float32)
            assert spec.supports_dtype("int64")

    def test_restricted_dtypes_respected(self):
        spec = EngineSpec(name="x", summary="", algorithms=None,
                          dtypes=("float32", "float64"), bit_identical=False)
        assert spec.supports_dtype(np.float64)
        assert not spec.supports_dtype(np.int32)

    def test_availability_tracks_import(self, monkeypatch):
        spec = ENGINES["compiled"]
        monkeypatch.setitem(sys.modules, "numba", None)
        assert not spec.available()

    def test_missing_module_is_unavailable(self):
        spec = EngineSpec(name="x", summary="", algorithms=None, dtypes=None,
                          bit_identical=True,
                          requires="definitely_not_a_module")
        assert not spec.available()


class TestErrors:
    def test_get_engine_spec_known(self):
        assert get_engine_spec("compiled") is ENGINES["compiled"]

    def test_get_engine_spec_unknown_lists_all(self):
        with pytest.raises(ConfigurationError) as exc:
            get_engine_spec("turbo")
        msg = str(exc.value)
        for name in known_engines():
            assert name in msg

    def test_unknown_engine_error_is_configuration_error(self):
        err = unknown_engine_error("nope")
        assert isinstance(err, ConfigurationError)
        assert "'nope'" in str(err)

    def test_routing_uses_the_registry_message(self):
        from repro.sat.registry import host_sat
        with pytest.raises(ConfigurationError, match="compiled"):
            host_sat(np.zeros((4, 4)), algorithm="1R1W", engine="turbo")

    def test_cli_choices_match_registry(self):
        from repro.cli import _build_parser
        parser = _build_parser()
        subparsers = next(a for a in parser._actions
                          if isinstance(a, type(a)) and hasattr(a, "choices")
                          and "run" in (a.choices or {}))
        run = subparsers.choices["run"]
        engine_action = next(a for a in run._actions if a.dest == "engine")
        assert tuple(engine_action.choices) == known_engines()
