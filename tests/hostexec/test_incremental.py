"""Differential tests for the incremental SAT engine.

The core property: after *every* edit, ``IncrementalSAT``'s resident table
must be bit-identical to a from-scratch host computation of the current
input (exact for integer accumulators; floats compare in the same
accumulator dtype against the same serial tile algebra), for every
algorithm, strategy, dtype, tile width, ragged shape and worker count.
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.hostexec import WavefrontEngine
from repro.hostexec.incremental import (IncrementalSAT, repair_benchmark,
                                        sanitize_incremental, verify_state)
from repro.sat import compute_sat, incremental_sat
from repro.sat.registry import get_algorithm

ALGORITHMS = ("2R1W", "1R1W", "(1+r)R1W", "1R1W-SKSS", "1R1W-SKSS-LB")


def _data(rng, shape, dtype):
    if np.issubdtype(np.dtype(dtype), np.floating):
        # Genuinely fractional: integer-valued float data makes every
        # add/subtract exact and hides rounding bugs from the bit-identity
        # oracle.
        return (rng.random(size=shape) * 100).astype(dtype)
    return rng.integers(0, 100, size=shape).astype(dtype)


def _reference(inc, current):
    """From-scratch serial host SAT in the engine's accumulator dtype."""
    return get_algorithm(inc.algorithm, tile_width=inc.tile_width).run_host(
        current, dtype_policy=inc.dtype)


def _random_edits(rng, inc, current, dtype, num_edits=4):
    """Apply random rect edits, asserting bit-identity after each one."""
    rows, cols = current.shape
    for _ in range(num_edits):
        h = int(rng.integers(1, rows + 1))
        w = int(rng.integers(1, cols + 1))
        top = int(rng.integers(0, rows - h + 1))
        left = int(rng.integers(0, cols - w + 1))
        vals = _data(rng, (h, w), dtype)
        got = inc.update(top, left, vals)
        current[top:top + h, left:left + w] = vals
        assert np.array_equal(got, _reference(inc, current))


class TestDifferential:
    """Random edit sequences vs from-scratch recompute, bit for bit."""

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_all_algorithms_int(self, rng, algorithm):
        a = _data(rng, (96, 96), np.int32)
        with IncrementalSAT(a, algorithm=algorithm) as inc:
            assert inc.strategy == "delta"
            _random_edits(rng, inc, a.astype(inc.dtype), np.int32)

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_all_algorithms_float(self, rng, algorithm):
        a = _data(rng, (96, 96), np.float64)
        with IncrementalSAT(a, algorithm=algorithm) as inc:
            assert inc.strategy == "recompute"
            _random_edits(rng, inc, a.astype(inc.dtype), np.float64)

    @pytest.mark.parametrize("dtype", [np.uint8, np.int32, np.float32,
                                       np.float64])
    def test_all_dtypes(self, rng, dtype):
        a = _data(rng, (96, 96), dtype)
        with IncrementalSAT(a) as inc:
            _random_edits(rng, inc, a.astype(inc.dtype), dtype)

    @pytest.mark.parametrize("tile_width", [8, 16, 32])
    def test_tile_widths(self, rng, tile_width):
        a = _data(rng, (96, 96), np.int32)
        with IncrementalSAT(a, tile_width=tile_width) as inc:
            _random_edits(rng, inc, a.astype(inc.dtype), np.int32)

    @pytest.mark.parametrize("shape", [(96, 96), (70, 130), (130, 70),
                                       (33, 97), (32, 160), (1, 45), (45, 1)])
    def test_ragged_rectangular_shapes(self, rng, shape):
        a = _data(rng, shape, np.int32)
        with IncrementalSAT(a) as inc:
            _random_edits(rng, inc, a.astype(inc.dtype), np.int32)

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_worker_independence(self, rng, workers):
        """The repaired table must not depend on the build's worker count."""
        a = _data(rng, (128, 96), np.float32)
        results = []
        edits_rng_seed = 77
        for _ in range(2):  # determinism across repeated runs too
            edit_rng = np.random.default_rng(edits_rng_seed)
            with IncrementalSAT(a, workers=workers) as inc:
                cur = a.astype(inc.dtype)
                _random_edits(edit_rng, inc, cur, np.float32)
                results.append(inc.sat.copy())
        assert np.array_equal(results[0], results[1])

    def test_strategies_agree_bitwise_for_ints(self, rng):
        """delta (modular arithmetic) and recompute (chunk kernels) must
        land on the same bits for integer accumulators."""
        a = _data(rng, (100, 75), np.int32)
        with IncrementalSAT(a, strategy="delta") as d, \
                IncrementalSAT(a, strategy="recompute") as r:
            for _ in range(3):
                h, w = int(rng.integers(1, 50)), int(rng.integers(1, 50))
                top = int(rng.integers(0, 100 - h + 1))
                left = int(rng.integers(0, 75 - w + 1))
                vals = _data(rng, (h, w), np.int32)
                assert np.array_equal(d.update(top, left, vals),
                                      r.update(top, left, vals))

    def test_integer_wraparound_stays_exact(self, rng):
        """Delta repair relies on modular arithmetic: overflow must agree
        with recompute bit for bit (int8 accumulates in int64, so force
        wrap-around via an int64 edit near the max)."""
        a = np.full((64, 64), 2**62, dtype=np.int64)
        with IncrementalSAT(a, strategy="delta") as inc:
            cur = a.copy()
            vals = np.full((10, 10), 2**62, dtype=np.int64)
            got = inc.update(5, 5, vals)
            cur[5:15, 5:15] = vals
            with np.errstate(over="ignore"):
                assert np.array_equal(got, _reference(inc, cur))


class TestEditKinds:
    """update_tiles / delta / advance cover the same property."""

    @pytest.mark.parametrize("strategy", ["delta", "recompute"])
    def test_update_tiles(self, rng, strategy):
        a = _data(rng, (96, 80), np.int32)
        with IncrementalSAT(a, tile_width=32, strategy=strategy) as inc:
            cur = a.astype(inc.dtype)
            grid = inc.grid
            edits = []
            for _ in range(3):
                I = int(rng.integers(0, grid.tile_rows))
                J = int(rng.integers(0, grid.tile_cols))
                shape = (grid.tile_height(I), grid.tile_width_at(J))
                edits.append((I, J, _data(rng, shape, np.int32)))
            got = inc.update_tiles(edits)
            for I, J, vals in edits:  # duplicates: last write wins
                cur[32 * I:32 * I + vals.shape[0],
                    32 * J:32 * J + vals.shape[1]] = vals
            assert np.array_equal(got, _reference(inc, cur))
            assert inc.stats.strategy == strategy

    def test_update_tiles_duplicate_tile_last_wins(self, rng):
        a = _data(rng, (64, 64), np.int32)
        with IncrementalSAT(a) as inc:
            first = _data(rng, (32, 32), np.int32)
            second = _data(rng, (32, 32), np.int32)
            got = inc.update_tiles([(0, 0, first), (0, 0, second)])
            cur = a.astype(inc.dtype)
            cur[:32, :32] = second
            assert np.array_equal(got, _reference(inc, cur))

    @pytest.mark.parametrize("strategy", ["delta", "recompute"])
    def test_frame_delta(self, rng, strategy):
        a = _data(rng, (90, 110), np.int32)
        with IncrementalSAT(a, strategy=strategy) as inc:
            cur = a.astype(inc.dtype)
            d = np.zeros_like(cur)
            d[40:60, 10:95] = rng.integers(-30, 30, size=(20, 85))
            got = inc.delta(d)
            cur += d
            assert np.array_equal(got, _reference(inc, cur))

    def test_zero_delta_is_noop(self, rng):
        a = _data(rng, (64, 64), np.int32)
        with IncrementalSAT(a) as inc:
            before = inc.sat.copy()
            got = inc.delta(np.zeros((64, 64), dtype=np.int64))
            assert np.array_equal(got, before)
            assert inc.stats.repaired_tiles == 0

    def test_advance_sequence(self, rng):
        a = _data(rng, (96, 96), np.float32)
        with IncrementalSAT(a) as inc:
            frame = a.astype(inc.dtype)
            for _ in range(3):
                frame = frame.copy()
                frame[rng.integers(0, 64):, rng.integers(0, 64):] += 1
                got = inc.advance(frame)
                assert np.array_equal(got, _reference(inc, frame))

    def test_advance_float_frame_resident_bit_exact(self, rng):
        """Regression: advance() must store the supplied float frame
        bit-exactly, not ``work + (frame - work)`` (which rounds)."""
        a = _data(rng, (70, 50), np.float64)
        with IncrementalSAT(a) as inc:
            frame = a.copy()
            frame[10:30, 5:25] = rng.random((20, 20)) * 0.1 + 0.1
            got = inc.advance(frame)
            assert np.array_equal(inc.input, frame)
            assert np.array_equal(got, _reference(inc, frame))

    def test_advance_float_cancellation(self, rng):
        """Regression: with cancellation (work=1e16 -> frame=1.0), the
        delta round trip would store ~2.0; the frame must survive."""
        a = np.full((64, 64), 1e16, dtype=np.float64)
        with IncrementalSAT(a) as inc:
            frame = np.ones((64, 64), dtype=np.float64)
            got = inc.advance(frame)
            assert np.array_equal(inc.input, frame)
            assert np.array_equal(got, _reference(inc, frame))

    def test_update_tiles_float_overwrite_bit_exact(self, rng):
        """Regression: the recompute path must write tile values directly,
        not reconstruct them as ``work += (values - work)``."""
        a = _data(rng, (64, 64), np.float32)
        with IncrementalSAT(a, tile_width=32) as inc:
            vals = (rng.random((32, 32)) * 0.1).astype(np.float32)
            got = inc.update_tiles([(0, 1, vals)])
            cur = a.astype(inc.dtype)
            cur[:32, 32:] = vals
            assert np.array_equal(inc.input, cur)
            assert np.array_equal(got, _reference(inc, cur))

    def test_empty_update_is_noop(self, rng):
        a = _data(rng, (64, 64), np.int32)
        with IncrementalSAT(a) as inc:
            before = inc.sat.copy()
            assert np.array_equal(
                inc.update(10, 10, np.empty((0, 5), dtype=np.int32)), before)
            assert np.array_equal(inc.update_tiles([]), before)


class TestStateAndAPI:
    def test_carry_planes_match_oracles_after_edits(self, rng):
        for algorithm in ("1R1W-SKSS-LB", "2R1W"):
            a = _data(rng, (96, 70), np.int32)
            with IncrementalSAT(a, algorithm=algorithm) as inc:
                inc.update(3, 9, _data(rng, (50, 40), np.int32))
                assert verify_state(inc) == []

    def test_sat_view_is_readonly(self, rng):
        with IncrementalSAT(_data(rng, (64, 64), np.int32)) as inc:
            with pytest.raises(ValueError):
                inc.sat[0, 0] = 1
            with pytest.raises(ValueError):
                inc.input[0, 0] = 1

    def test_repair_stats_accounting(self, rng):
        a = _data(rng, (128, 128), np.int32)
        with IncrementalSAT(a, tile_width=32) as inc:
            assert inc.stats.total_tiles == 16
            inc.update(0, 0, _data(rng, (10, 10), np.int32))
            # one dirty tile at (0, 0): delta repairs the whole quadrant
            assert inc.stats.dirty_tiles == 1
            assert inc.stats.repaired_tiles == 16
            inc.update(96, 96, _data(rng, (10, 10), np.int32))
            assert inc.stats.repaired_tiles == 1  # bottom-right corner tile
            assert 0 < inc.stats.savings < 1

    def test_recompute_repairs_staircase_not_quadrant(self, rng):
        a = _data(rng, (128, 128), np.float64)
        with IncrementalSAT(a, tile_width=32) as inc:
            inc.update(96, 0, _data(rng, (10, 10), np.float64))
            # dirty tile (3, 0): closure is the bottom tile row only
            assert inc.stats.repaired_tiles == 4

    def test_rebuild_resets_to_new_frame(self, rng):
        a = _data(rng, (64, 64), np.int32)
        with IncrementalSAT(a) as inc:
            b = _data(rng, (96, 32), np.int32)  # new shape too
            got = inc.rebuild(b)
            assert got.shape == (96, 32)
            assert np.array_equal(got, _reference(inc, b.astype(inc.dtype)))

    def test_engine_retain_state_private_copies(self, rng):
        """Retained state must survive caller mutation and later computes."""
        a = _data(rng, (64, 64), np.float64)
        with WavefrontEngine(workers=1) as eng:
            sat = eng.compute(a, retain_state=True)
            state = eng.retained_state()
            a[:] = 0  # caller mutates the input afterwards
            eng.compute(_data(rng, (64, 64), np.float64))  # unrelated call
            assert np.array_equal(state.out, sat)
            assert state.work[0, 0] != 0 or a is not state.work

    def test_errors(self, rng):
        a = _data(rng, (64, 64), np.int32)
        with IncrementalSAT(a) as inc:
            with pytest.raises(ConfigurationError):
                inc.update(60, 60, np.ones((10, 10), dtype=np.int32))
            with pytest.raises(ConfigurationError):
                inc.delta(np.zeros((10, 10), dtype=np.int64))
            with pytest.raises(ConfigurationError):
                inc.advance(np.zeros((10, 10), dtype=np.int64))
            with pytest.raises(ConfigurationError):
                inc.update_tiles([(0, 0, np.ones((5, 5), dtype=np.int32))])
        with pytest.raises(ConfigurationError):
            inc.update(0, 0, a)  # closed
        with pytest.raises(ConfigurationError):
            IncrementalSAT(a, strategy="delta", dtype_policy=np.float64)
        with pytest.raises(ConfigurationError):
            IncrementalSAT(a, strategy="nope")
        with pytest.raises(ConfigurationError):
            IncrementalSAT(np.zeros(5, dtype=np.int32))

    def test_registry_entry_points(self, rng):
        a = _data(rng, (80, 60), np.int32)
        with incremental_sat(a, algorithm="skss-lb") as inc:
            assert inc.algorithm == "1R1W-SKSS-LB"
            frame = a.copy()
            frame[10:20, 10:20] = 0
            res = compute_sat(frame, incremental=inc)
            assert res.params["engine"] == "incremental"
            assert res.params["repaired_tiles"] <= res.params["total_tiles"]
            assert np.array_equal(res.sat, _reference(inc,
                                                      frame.astype(inc.dtype)))
        with pytest.raises(ConfigurationError):
            compute_sat(a, incremental="not-an-engine")
        with pytest.raises(ConfigurationError):
            compute_sat(a, incremental=inc, engine="wavefront")

    def test_sanitize_hook_clean(self):
        assert sanitize_incremental(n=64, edits=2) == []


class TestRepairBenchmark:
    def test_smoke_record(self):
        row = repair_benchmark(128, dirty_frac=0.1, edits=2, repeats=1)
        assert row["bit_identical"]
        assert row["strategy"] == "delta"
        assert row["repair_mean_s"] > 0
        with pytest.raises(ConfigurationError):
            repair_benchmark(64, dirty_frac=0.0)


@pytest.mark.slow
class TestDifferentialExhaustive:
    """Long sweep: the full cross-product, many edits each."""

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    @pytest.mark.parametrize("dtype", [np.uint8, np.int32, np.float32,
                                       np.float64])
    @pytest.mark.parametrize("shape", [(96, 96), (70, 130), (33, 97)])
    def test_sweep(self, rng, algorithm, dtype, shape):
        a = _data(rng, shape, dtype)
        with IncrementalSAT(a, algorithm=algorithm) as inc:
            _random_edits(rng, inc, a.astype(inc.dtype), dtype, num_edits=8)
            assert verify_state(inc) == []
