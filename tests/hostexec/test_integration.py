"""Engine routing through the public layers: registry, CLI, out-of-core,
and the applications."""

import numpy as np
import pytest

from repro.apps.box_filter import box_filter
from repro.apps.template_match import ncc_match, window_stats
from repro.apps.variance_filter import local_moments
from repro.cli import main as cli_main
from repro.errors import ConfigurationError
from repro.hostexec import WavefrontEngine
from repro.sat.outofcore import out_of_core_sat
from repro.sat.reference import sat_reference
from repro.sat.registry import HOST_ENGINES, compute_sat, host_sat


def matrix(n, seed=3):
    rng = np.random.default_rng(seed)
    return rng.integers(0, 50, size=(n, n)).astype(np.float64)


class TestHostSat:
    @pytest.mark.parametrize("engine", [None, "serial", "wavefront",
                                        "parallel"])
    def test_engines_agree(self, engine):
        a = matrix(96)
        assert np.array_equal(host_sat(a, algorithm="skss-lb", engine=engine),
                              sat_reference(a))

    def test_engine_instance_accepted(self):
        a = matrix(96)
        with WavefrontEngine(workers=2) as eng:
            assert np.array_equal(host_sat(a, engine=eng), sat_reference(a))

    def test_reference_when_no_algorithm(self):
        a = matrix(100)  # not tile-aligned: only the plain scan handles it
        assert np.array_equal(host_sat(a), sat_reference(a))

    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigurationError, match="engine"):
            host_sat(matrix(96), engine="gpu")

    def test_workers_forwarded_to_wavefront(self):
        a = matrix(96)
        sat = host_sat(a, engine="wavefront", workers=2)
        assert np.array_equal(sat, sat_reference(a))


class TestComputeSat:
    @pytest.mark.parametrize("engine", ["wavefront", "parallel"])
    def test_engine_implies_host_path(self, engine):
        a = matrix(96)
        result = compute_sat(a, engine=engine)
        assert result.report is None  # no simulator launch report
        assert result.params["engine"] == engine
        assert np.array_equal(result.sat, sat_reference(a))

    def test_engine_and_gpu_mutually_exclusive(self):
        from repro.gpusim import GPU
        with pytest.raises(ConfigurationError, match="exclusive"):
            compute_sat(matrix(96), engine="wavefront", gpu=GPU())

    def test_serial_engine_matches_default_host(self):
        a = matrix(96)
        viaengine = compute_sat(a, engine="serial", simulate=False)
        plain = compute_sat(a, simulate=False)
        assert np.array_equal(viaengine.sat, plain.sat)

    def test_workers_forwarded(self):
        a = matrix(96)
        result = compute_sat(a, engine="wavefront", workers=2)
        assert np.array_equal(result.sat, sat_reference(a))

    def test_engine_instance_recorded_as_wavefront(self):
        a = matrix(96)
        with WavefrontEngine(workers=1) as eng:
            result = compute_sat(a, engine=eng)
        assert result.params["engine"] == "wavefront"

    def test_algorithm_params_survive_engine_path(self):
        a = matrix(96)
        result = compute_sat(a, algorithm="hybrid", engine="wavefront")
        assert result.algorithm == "(1+r)R1W"


class TestCLI:
    def run_cli(self, capsys, *argv):
        code = cli_main(list(argv))
        return code, capsys.readouterr().out

    @pytest.mark.parametrize("engine", HOST_ENGINES)
    def test_run_engine_flag(self, capsys, engine):
        code, out = self.run_cli(capsys, "run", "-n", "64",
                                 "--engine", engine)
        assert code == 0
        assert "correct vs reference: True" in out
        if engine != "serial":
            assert "host path" in out

    def test_run_engine_with_workers(self, capsys):
        code, out = self.run_cli(capsys, "run", "-n", "64",
                                 "--engine", "wavefront", "--workers", "2")
        assert code == 0
        assert "correct vs reference: True" in out

    def test_run_rejects_unknown_engine(self, capsys):
        with pytest.raises(SystemExit):
            cli_main(["run", "-n", "64", "--engine", "warp"])


class TestOutOfCore:
    def test_wavefront_bands_match_reference(self):
        a = matrix(128)
        out = out_of_core_sat(a, band_rows=128, algorithm="skss-lb",
                              tile_width=32, engine="wavefront")
        assert np.array_equal(out, sat_reference(a))

    def test_parallel_engine_any_band_shape(self):
        a = matrix(96)
        out = out_of_core_sat(a, band_rows=32, engine="parallel")
        assert np.array_equal(out, sat_reference(a))

    def test_engine_and_gpu_factory_mutually_exclusive(self):
        from repro.gpusim import GPU
        with pytest.raises(ConfigurationError, match="exclusive"):
            out_of_core_sat(matrix(64), band_rows=32, engine="wavefront",
                            gpu_factory=GPU)


class TestApps:
    def test_box_filter_engines_agree(self):
        img = matrix(64, seed=11)
        base = box_filter(img, 3)
        assert np.allclose(box_filter(img, 3, engine="wavefront"), base)
        assert np.allclose(box_filter(img, 3, engine="parallel"), base)

    def test_box_filter_engine_vs_gpu_exclusive(self):
        from repro.gpusim import GPU
        with pytest.raises(ConfigurationError, match="exclusive"):
            box_filter(matrix(64), 2, engine="wavefront", gpu=GPU())

    def test_local_moments_engine(self):
        img = matrix(64, seed=12)
        mean, var = local_moments(img, 2)
        mean_e, var_e = local_moments(img, 2, engine="wavefront", workers=2)
        assert np.allclose(mean, mean_e)
        assert np.allclose(var, var_e)

    def test_window_stats_engine(self):
        img = matrix(64, seed=13)
        s_ref, sq_ref = window_stats(img, 8, 8)
        s, sq = window_stats(img, 8, 8, engine="wavefront")
        assert np.allclose(s, s_ref) and np.allclose(sq, sq_ref)

    def test_ncc_match_engine(self):
        img = matrix(64, seed=14)
        tpl = img[20:30, 24:34]
        base = ncc_match(img, tpl)
        assert np.allclose(ncc_match(img, tpl, engine="wavefront"), base)
        top, left = np.unravel_index(
            np.argmax(ncc_match(img, tpl, engine="parallel")), base.shape)
        assert (top, left) == (20, 24)
