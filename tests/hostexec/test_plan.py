"""Structure tests for the wavefront plan (chunking, dependencies, DAG)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.hostexec.plan import (DEPS_LEFT_UP, DEPS_LEFT_UP_CORNER,
                                 MIN_CHUNK_TILES, TILE_PENDING, TILE_READY,
                                 build_plan, split_diagonal)
from repro.primitives.tile import TileGrid


def grid(n=256, W=32):
    return TileGrid(n=n, W=W)


class TestSplitDiagonal:
    def test_whole_when_one_part(self):
        tiles = [(0, 3), (1, 2), (2, 1), (3, 0)]
        assert split_diagonal(tiles, 1) == [tiles]

    def test_contiguous_cover(self):
        tiles = [(i, 9 - i) for i in range(10)]
        parts = split_diagonal(tiles, 3)
        assert sum(parts, []) == tiles
        assert len(parts) == 3

    def test_never_more_parts_than_tiles(self):
        tiles = [(0, 1), (1, 0)]
        assert len(split_diagonal(tiles, 8)) == 2

    def test_min_tiles_limits_parts(self):
        tiles = [(i, 19 - i) for i in range(20)]
        parts = split_diagonal(tiles, 8, min_tiles=8)
        assert len(parts) == 2
        assert all(len(p) >= 8 for p in parts)

    def test_short_diagonal_stays_whole_under_min_tiles(self):
        tiles = [(i, 4 - i) for i in range(5)]
        assert split_diagonal(tiles, 4, min_tiles=8) == [tiles]

    def test_zero_parts_rejected(self):
        with pytest.raises(ConfigurationError):
            split_diagonal([(0, 0)], 0)


class TestBuildPlan:
    def test_every_tile_owned_by_exactly_one_chunk(self):
        plan = build_plan(grid(), DEPS_LEFT_UP_CORNER, workers=4)
        t = plan.grid.tiles_per_side
        seen = np.zeros((t, t), dtype=int)
        for c in plan.chunks:
            seen[c.Is, c.Js] += 1
        assert (seen == 1).all()
        assert (plan.chunk_id >= 0).all()

    def test_chunks_are_single_diagonal(self):
        plan = build_plan(grid(), DEPS_LEFT_UP_CORNER, workers=4)
        for c in plan.chunks:
            assert (c.Is + c.Js == c.diagonal).all()

    def test_deps_init_corner_family(self):
        plan = build_plan(grid(128, 32), DEPS_LEFT_UP_CORNER, workers=2)
        d = plan.deps_init
        assert d[0, 0] == 0
        assert (d[0, 1:] == 1).all() and (d[1:, 0] == 1).all()
        assert (d[1:, 1:] == 3).all()

    def test_deps_init_left_up(self):
        plan = build_plan(grid(128, 32), DEPS_LEFT_UP, workers=2)
        d = plan.deps_init
        assert d[0, 0] == 0
        assert (d[1:, 1:] == 2).all()

    def test_single_root_at_origin(self):
        plan = build_plan(grid(), DEPS_LEFT_UP_CORNER, workers=4)
        roots = plan.roots()
        assert len(roots) == 1
        root = plan.chunks[roots[0]]
        assert root.diagonal == 0 and root.num_predecessors == 0

    def test_successor_edges_point_forward(self):
        plan = build_plan(grid(), DEPS_LEFT_UP_CORNER, workers=4)
        for c in plan.chunks:
            for sid in c.successors:
                assert plan.chunks[sid].diagonal > c.diagonal

    def test_predecessor_counts_consistent_with_successors(self):
        plan = build_plan(grid(), DEPS_LEFT_UP_CORNER, workers=4)
        counted = np.zeros(plan.num_chunks, dtype=int)
        for c in plan.chunks:
            for sid in c.successors:
                counted[sid] += 1
        assert (counted == plan.pending_init).all()
        assert (counted
                == [c.num_predecessors for c in plan.chunks]).all()

    def test_topological_diagonal_order(self):
        # Executing chunks in index (diagonal-major) order satisfies all
        # dependencies — the workers=1 fast path relies on this.
        plan = build_plan(grid(), DEPS_LEFT_UP_CORNER, workers=4)
        done = set()
        for c in plan.chunks:
            for p, other in enumerate(plan.chunks):
                if c.index in other.successors:
                    assert p in done
            done.add(c.index)

    def test_initial_status_words(self):
        plan = build_plan(grid(128, 32), DEPS_LEFT_UP_CORNER, workers=2)
        status = plan.initial_status()
        assert status[0, 0] == TILE_READY
        assert (status.ravel()[1:] == TILE_PENDING).all()

    def test_min_chunk_size_respected(self):
        plan = build_plan(grid(2048, 32), DEPS_LEFT_UP_CORNER, workers=8)
        for c in plan.chunks:
            diag_len = len(plan.grid.tiles_on_diagonal(c.diagonal))
            if diag_len >= 2 * MIN_CHUNK_TILES:
                assert c.num_tiles >= MIN_CHUNK_TILES

    def test_long_diagonals_split_up_to_workers(self):
        plan = build_plan(grid(2048, 32), DEPS_LEFT_UP_CORNER, workers=4)
        t = plan.grid.tiles_per_side
        mid = [c for c in plan.chunks if c.diagonal == t - 1]
        assert len(mid) == 4

    def test_workers_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            build_plan(grid(), DEPS_LEFT_UP_CORNER, workers=0)
