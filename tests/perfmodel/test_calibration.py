"""Calibration against the paper's cudaMemcpy duplication row."""

import pytest

from repro.perfmodel import (DEFAULT_CALIBRATION, PAPER_DUPLICATION_MS, SIZES,
                             fit_duplication)


class TestFit:
    def test_bandwidth_near_hbm2_spec(self):
        """The fitted effective bandwidth must be physically plausible for a
        TITAN V (HBM2 peak 652.8 GB/s, measured copies ~85-95 % of peak)."""
        cal = fit_duplication()
        assert 500 <= cal.bandwidth_gbps <= 660

    def test_launch_overhead_is_microseconds(self):
        cal = fit_duplication()
        assert 0.0 <= cal.t0_us <= 10.0

    @pytest.mark.parametrize("idx", range(len(SIZES)))
    def test_every_point_within_20_percent(self, idx):
        cal = DEFAULT_CALIBRATION
        model = cal.duplication_us(SIZES[idx]) / 1e3
        paper = PAPER_DUPLICATION_MS[idx]
        assert abs(model - paper) / paper < 0.20, (SIZES[idx], model, paper)

    def test_monotone_in_n(self):
        cal = DEFAULT_CALIBRATION
        times = [cal.duplication_us(n) for n in SIZES]
        assert all(a < b for a, b in zip(times, times[1:]))

    def test_bytes_us_linear(self):
        cal = DEFAULT_CALIBRATION
        assert cal.bytes_us(2e9) == pytest.approx(2 * cal.bytes_us(1e9))
