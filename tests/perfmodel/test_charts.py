"""ASCII chart renderers."""

import pytest

from repro.errors import ConfigurationError
from repro.perfmodel.charts import bar_chart, log_chart, table3_chart


class TestLogChart:
    def test_renders_series_and_legend(self):
        art = log_chart({"a": [1.0, 10.0], "b": [2.0, 20.0]}, [256, 512])
        assert "legend" in art and "o=a" in art and "x=b" in art

    def test_title(self):
        art = log_chart({"a": [1.0, 2.0]}, [1, 2], title="hello")
        assert art.splitlines()[0] == "hello"

    def test_skips_nans(self):
        art = log_chart({"a": [float("nan"), 5.0]}, [1, 2])
        assert "o" in art

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            log_chart({}, [1, 2])
        with pytest.raises(ConfigurationError):
            log_chart({"a": [float("nan")]}, [1])

    def test_axis_labels_show_extremes(self):
        art = log_chart({"a": [0.5, 50.0]}, [256, 32768])
        assert "50" in art and "0.5" in art
        assert "256" in art and "32768" in art


class TestBarChart:
    def test_bars_scale_to_max(self):
        art = bar_chart({"small": 1.0, "big": 2.0}, width=10)
        lines = art.splitlines()
        assert lines[1].count("#") == 10       # 'big' fills the width
        assert lines[0].count("#") == 5

    def test_unit_suffix(self):
        art = bar_chart({"x": 3.0}, unit=" ms")
        assert "3 ms" in art

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            bar_chart({})
        with pytest.raises(ConfigurationError):
            bar_chart({"x": 0.0})


class TestTable3Chart:
    def test_contains_all_series(self):
        art = table3_chart()
        assert "duplication" in art and "1R1W-SKSS-LB" in art
        assert "log-log" in art
