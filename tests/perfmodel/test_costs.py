"""Cost model internals: occupancy, strided multiplier, kernel specs."""

import pytest

from repro.errors import ConfigurationError
from repro.perfmodel import TitanVModel, kernel_costs
from repro.perfmodel.titanv import DEFAULT_CONSTANTS


@pytest.fixture
def model():
    return TitanVModel()


class TestOccupancy:
    def test_saturated_launch(self, model):
        assert model.occupancy(1000, 1024) == 1.0

    def test_tiny_launch_penalized(self, model):
        assert model.occupancy(1, 32) < 0.01

    def test_resident_cap(self, model):
        # A million blocks can't exceed the resident-thread ceiling.
        assert model.occupancy(10**6, 1024) == 1.0

    def test_monotone_in_blocks(self, model):
        occs = [model.occupancy(b, 256) for b in (1, 4, 16, 64, 256)]
        assert all(a <= b for a, b in zip(occs, occs[1:]))


class TestStrided:
    def test_fits_in_l2_no_penalty(self, model):
        assert model.strided_multiplier(1024**2) == pytest.approx(1.0, abs=0.3)

    def test_spills_l2_full_penalty(self, model):
        big = model.strided_multiplier(4 * 1024**3)
        assert big == pytest.approx(DEFAULT_CONSTANTS.strided_factor, rel=0.02)

    def test_monotone_in_footprint(self, model):
        ms = [model.strided_multiplier(b) for b in
              (1e6, 1e7, 1e8, 1e9, 1e10)]
        assert all(a <= b for a, b in zip(ms, ms[1:]))


class TestKernelSpecs:
    def test_2r2w_two_kernels(self):
        ks = kernel_costs("2R2W", 1024)
        assert len(ks) == 2
        assert ks[0].strided_bytes == 0 and ks[1].strided_bytes > 0

    def test_1r1w_kernel_count(self):
        ks = kernel_costs("1R1W", 1024, W=32)
        assert len(ks) == 2 * 32 - 1

    def test_skss_lb_single_kernel_with_atomics(self):
        (k,) = kernel_costs("1R1W-SKSS-LB", 1024, W=32)
        assert k.atomics == 32 * 32
        assert k.blocks == 32 * 32

    def test_traffic_scales_with_n(self):
        small = sum(k.coalesced_bytes for k in kernel_costs("2R1W", 512))
        large = sum(k.coalesced_bytes for k in kernel_costs("2R1W", 1024))
        assert 3.5 <= large / small <= 4.5

    def test_unknown_algorithm(self):
        with pytest.raises(ConfigurationError):
            kernel_costs("XYZ", 256)

    def test_misaligned_tile(self):
        with pytest.raises(ConfigurationError):
            kernel_costs("1R1W", 100, W=32)

    def test_hybrid_r_zero_equals_1r1w_structure(self):
        hybrid = kernel_costs("(1+r)R1W", 1024, W=32, r=0.0)
        pure = kernel_costs("1R1W", 1024, W=32)
        assert len(hybrid) == len(pure)


class TestEstimates:
    def test_breakdown_totals(self, model):
        bd = model.estimate("1R1W-SKSS-LB", 1024, W=64)
        assert bd.total_us == pytest.approx(sum(bd.kernel_times_us))
        assert bd.total_ms == pytest.approx(bd.total_us / 1e3)

    def test_every_algorithm_slower_than_duplication(self, model):
        """No SAT algorithm may beat the duplication lower bound."""
        from repro.perfmodel import TABLE3_ORDER
        for n in (256, 1024, 8192):
            dup = model.duplication_us(n)
            for name in TABLE3_ORDER:
                best = model.best_estimate(name, n)
                assert best.total_us > dup, (name, n)

    def test_best_estimate_picks_minimum(self, model):
        per_w = [model.estimate("1R1W-SKSS", 2048, W=w).total_us
                 for w in (32, 64, 128)]
        assert model.best_estimate("1R1W-SKSS", 2048).total_us == \
            pytest.approx(min(per_w))

    def test_w_larger_than_n_skipped(self, model):
        bd = model.best_estimate("1R1W", 64, tile_widths=(32, 64, 128))
        assert bd.total_us > 0
