"""Cross-device model projections (extension)."""

import pytest

from repro.errors import ConfigurationError
from repro.perfmodel.devices import (DEVICE_SPECS, cross_device_summary,
                                     get_device_spec, model_for_device)


class TestSpecs:
    def test_titan_v_present(self):
        spec = get_device_spec("titan-v")
        assert spec.spec_bandwidth_gbps == pytest.approx(652.8)
        assert spec.num_sms == 80

    def test_effective_bandwidth_derated(self):
        for spec in DEVICE_SPECS.values():
            assert 0.8 * spec.spec_bandwidth_gbps < \
                spec.effective_bandwidth_gbps < spec.spec_bandwidth_gbps

    def test_unknown_device(self):
        with pytest.raises(ConfigurationError):
            get_device_spec("tpu")

    def test_case_insensitive(self):
        assert get_device_spec("V100").name.startswith("NVIDIA Tesla V100")


class TestProjections:
    def test_titan_v_projection_equals_default_model(self):
        """The titan-v 'projection' must reproduce the fitted calibration."""
        from repro.perfmodel import DEFAULT_CALIBRATION
        cal = model_for_device("titan-v").calibration
        assert cal.bandwidth_gbps == pytest.approx(
            DEFAULT_CALIBRATION.bandwidth_gbps, rel=1e-9)

    def test_faster_memory_means_faster_sat(self):
        t_v100 = model_for_device("v100").best_estimate("1R1W-SKSS-LB",
                                                        8192).total_ms
        t_1080 = model_for_device("gtx-1080ti").best_estimate("1R1W-SKSS-LB",
                                                              8192).total_ms
        assert t_v100 < t_1080

    def test_ranking_preserved_on_every_device(self):
        """The paper's headline is bandwidth-scale invariant: SKSS-LB wins at
        8K² on every projected device."""
        summary = cross_device_summary(8192)
        for key, row in summary.items():
            lb = row["1R1W-SKSS-LB"]
            for name, t in row.items():
                if name not in ("duplication", "1R1W-SKSS-LB"):
                    assert lb <= t * 1.001, (key, name)

    def test_summary_contains_all_devices(self):
        summary = cross_device_summary(2048)
        assert set(summary) == set(DEVICE_SPECS)
        for row in summary.values():
            assert row["duplication"] > 0
