"""CSV/JSON exports of the reproduced tables."""

import csv
import io
import json

from repro.perfmodel.export import (table1_records, table3_records, to_csv,
                                    to_json, write_all)
from repro.perfmodel.titanv import SIZES, TILE_WIDTHS


class TestRecords:
    def test_table1_has_seven_rows(self):
        recs = table1_records(1024)
        assert len(recs) == 7
        assert {r["algorithm"] for r in recs} >= {"2R2W", "1R1W-SKSS-LB"}

    def test_table1_fields(self):
        rec = table1_records(1024)[0]
        assert set(rec) == {"algorithm", "kernel_calls_symbolic",
                            "kernel_calls", "threads_symbolic", "max_threads",
                            "parallelism", "reads_symbolic", "reads",
                            "writes_symbolic", "writes"}

    def test_table3_cell_count(self):
        recs = table3_records()
        # duplication (8) + 2 algorithms without W (2*8) + 5 with 3 widths.
        expected = len(SIZES) * (1 + 2 + 5 * len(TILE_WIDTHS))
        assert len(recs) == expected

    def test_table3_paper_values_attached(self):
        recs = table3_records()
        lb = [r for r in recs if r["algorithm"] == "1R1W-SKSS-LB"
              and r["W"] == 128 and r["n"] == 32768]
        assert len(lb) == 1
        assert lb[0]["paper_ms"] == 15.8
        assert 0.3 * 15.8 < lb[0]["model_ms"] < 3 * 15.8


class TestSerialization:
    def test_csv_roundtrip(self):
        text = to_csv(table1_records(256))
        rows = list(csv.DictReader(io.StringIO(text)))
        assert len(rows) == 7
        assert rows[0]["algorithm"] == "2R2W"

    def test_csv_empty(self):
        assert to_csv([]) == ""

    def test_json_roundtrip(self):
        recs = json.loads(to_json(table3_records()))
        assert isinstance(recs, list) and recs[0]["algorithm"] == "duplication"

    def test_write_all(self, tmp_path):
        written = write_all(tmp_path, n=256)
        assert len(written) == 4
        for path in written:
            assert (tmp_path / path.split("/")[-1]).exists()
        table3 = json.loads((tmp_path / "table3.json").read_text())
        assert any(r["algorithm"] == "1R1W-SKSS-LB" for r in table3)
