"""Robustness of the headline conclusion to the model's fixed constants.

The fitted parameters come from the duplication row; the remaining constants
(saturation point, strided factor, L2 size, atomic latency, hand-off costs)
are physically motivated but approximate.  The paper's headline — 1R1W-SKSS-LB
is the fastest algorithm at every size — must not hinge on their exact
values, so we perturb each by ±40 % and re-check the ranking.
"""

import dataclasses
import math

import pytest

from repro.perfmodel import SIZES, TABLE3_ORDER, TitanVModel, model_table3
from repro.perfmodel.titanv import DEFAULT_CONSTANTS

PERTURBABLE = ("saturation_threads", "strided_factor", "l2_bytes",
               "atomic_ns", "skss_handoff_ns_per_width", "lb_chain_step_us")


def check_ranking(model: TitanVModel, *, skss_slack_at_32k: float = 1.0) -> None:
    """Assert SKSS-LB is the fastest everywhere.

    The one genuinely tight margin — LB vs plain SKSS at 32K², 2.5 % in the
    paper itself (15.8 vs 16.2 ms) — may flip under perturbation; callers
    allow it explicitly via ``skss_slack_at_32k`` (a tolerated ratio).
    """
    table = model_table3(model)

    def best(name, k):
        return min(v[k] for v in table[name].values() if not math.isnan(v[k]))

    for k, n in enumerate(SIZES):
        lb = best("1R1W-SKSS-LB", k)
        for name in TABLE3_ORDER:
            if name == "1R1W-SKSS-LB":
                continue
            slack = skss_slack_at_32k if (name == "1R1W-SKSS"
                                          and n == 32768) else 1.0
            assert lb <= best(name, k) * slack * 1.001, \
                (name, n, lb, best(name, k))


@pytest.mark.parametrize("field", PERTURBABLE)
@pytest.mark.parametrize("factor", [0.6, 1.4])
def test_ranking_robust_under_perturbation(field, factor):
    """±40 % on any single constant preserves the ranking against every
    algorithm at every size, except the documented ≤5 % LB-vs-SKSS margin
    at 32K² (which is equally tight in the paper's own measurements)."""
    constants = dataclasses.replace(
        DEFAULT_CONSTANTS, **{field: getattr(DEFAULT_CONSTANTS, field) * factor})
    check_ranking(TitanVModel(constants=constants), skss_slack_at_32k=1.05)


def test_lb_wins_with_default_constants():
    check_ranking(TitanVModel())


def test_extreme_atomic_cost_does_flip_small_w_order(monkeypatch):
    """Sanity that the knobs are live: a 10x atomic cost makes W=32 collapse
    even harder (the model is actually sensitive where it should be)."""
    import dataclasses
    heavy = dataclasses.replace(DEFAULT_CONSTANTS, atomic_ns=120.0)
    model = TitanVModel(constants=heavy)
    k = SIZES.index(32768)
    t32 = model.estimate("1R1W-SKSS-LB", 32768, W=32).total_ms
    t128 = model.estimate("1R1W-SKSS-LB", 32768, W=128).total_ms
    base = TitanVModel().estimate("1R1W-SKSS-LB", 32768, W=32).total_ms
    assert t32 > base
    assert t32 > 3 * t128
