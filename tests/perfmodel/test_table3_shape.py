"""Table III shape checks: the paper's qualitative conclusions must hold in
the model's predictions (calibrated from the duplication row only).

These are the reproduction's headline assertions:
 1. 1R1W-SKSS-LB is the fastest algorithm at every size (Section V).
 2. Its overhead reaches single digits at large sizes (paper: 5.7 % min).
 3. 2R2W-optimal's overhead approaches but never drops below 100 %.
 4. 2R1W's overhead never drops below 50 %.
 5. 2R2W is the slowest algorithm at large sizes (strided access).
 6. For SKSS-LB the best tile width grows with n (W=32 wins small,
    W=128 wins large), including the W=32 collapse at 32K².
 7. Every predicted cell is within 2.5x of the paper's measured cell.
"""

import math

import numpy as np
import pytest

from repro.perfmodel import (PAPER_DUPLICATION_MS, PAPER_TABLE3, SIZES,
                             TABLE3_ORDER, TILE_WIDTHS, TitanVModel,
                             model_table3, overhead_row, paper_best_ms,
                             render_table3)


@pytest.fixture(scope="module")
def table():
    return model_table3(TitanVModel())


def best(table, name, k):
    return min(v[k] for v in table[name].values() if not math.isnan(v[k]))


class TestHeadlineClaims:
    def test_skss_lb_fastest_at_every_size(self, table):
        for k, n in enumerate(SIZES):
            lb = best(table, "1R1W-SKSS-LB", k)
            for name in TABLE3_ORDER:
                if name != "1R1W-SKSS-LB":
                    assert lb <= best(table, name, k), (n, name)

    def test_skss_lb_overhead_single_digit_at_large_sizes(self, table):
        dup = table["duplication"][None]
        for k, n in enumerate(SIZES):
            if n >= 8192:
                oh = (best(table, "1R1W-SKSS-LB", k) - dup[k]) / dup[k] * 100
                assert oh < 15.0, (n, oh)

    def test_2r2w_optimal_overhead_floor_100pct(self, table):
        dup = table["duplication"][None]
        for k, n in enumerate(SIZES):
            oh = (best(table, "2R2W-optimal", k) - dup[k]) / dup[k] * 100
            assert oh >= 99.0, (n, oh)

    def test_2r1w_overhead_floor_50pct(self, table):
        dup = table["duplication"][None]
        for k in range(len(SIZES)):
            oh = (best(table, "2R1W", k) - dup[k]) / dup[k] * 100
            assert oh >= 49.0

    def test_2r2w_slowest_at_large_sizes(self, table):
        for k, n in enumerate(SIZES):
            if n >= 2048:
                worst = max(best(table, name, k) for name in TABLE3_ORDER
                            if name != "2R2W")
                assert best(table, "2R2W", k) > worst

    def test_skss_lb_beats_skss_by_larger_factor_at_medium_sizes(self, table):
        """The look-back payoff peaks where SKSS is occupancy-starved."""
        k = SIZES.index(1024)
        ratio_medium = best(table, "1R1W-SKSS", k) / best(table,
                                                          "1R1W-SKSS-LB", k)
        k32 = SIZES.index(32768)
        ratio_large = best(table, "1R1W-SKSS", k32) / best(table,
                                                           "1R1W-SKSS-LB", k32)
        assert ratio_medium > ratio_large

    def test_1r1w_terrible_at_small_sizes(self, table):
        """Many kernel launches + low parallelism: 1R1W overhead at 512² is
        several hundred percent (paper: 963 %)."""
        k = SIZES.index(512)
        dup = table["duplication"][None][k]
        oh = (best(table, "1R1W", k) - dup) / dup * 100
        assert oh > 200.0


class TestBestTileWidth:
    def test_lb_w128_wins_large(self, table):
        k = SIZES.index(32768)
        row = table["1R1W-SKSS-LB"]
        assert row[128][k] <= min(row[32][k], row[64][k])

    def test_lb_w32_never_optimal(self, table):
        """Both the paper and the model have W=32 losing to a wider tile at
        every size for the look-back algorithm (flag/atomic overhead scales
        with the tile count)."""
        row = table["1R1W-SKSS-LB"]
        paper = PAPER_TABLE3["1R1W-SKSS-LB"]
        for k in range(len(SIZES)):
            assert min(row[64][k], row[128][k]) <= row[32][k]
            assert min(paper[64][k], paper[128][k]) <= paper[32][k]

    def test_lb_w32_collapses_at_32k(self, table):
        """The paper's striking cell: LB at W=32 is >2x its W=128 time at
        32K² (a million same-address atomics)."""
        k = SIZES.index(32768)
        row = table["1R1W-SKSS-LB"]
        assert row[32][k] > 1.5 * row[128][k]
        paper = PAPER_TABLE3["1R1W-SKSS-LB"]
        assert paper[32][k] > 1.5 * paper[128][k]

    def test_skss_handoff_grows_with_w_at_small_sizes(self, table):
        """SKSS at 256² prefers narrow tiles (short serial chain); the paper
        shows the same (W=32/64 beat W=128 at 256²)."""
        k = SIZES.index(256)
        row = table["1R1W-SKSS"]
        assert min(row[32][k], row[64][k]) <= row[128][k]
        paper = PAPER_TABLE3["1R1W-SKSS"]
        assert min(paper[32][k], paper[64][k]) <= paper[128][k]


class TestQuantitativeAgreement:
    def test_every_cell_within_3x_of_paper(self, table):
        for name in TABLE3_ORDER:
            for W, times in table[name].items():
                paper_row = PAPER_TABLE3[name][W if W in PAPER_TABLE3[name]
                                               else None]
                for k, model_ms in enumerate(times):
                    if math.isnan(model_ms):
                        continue
                    ratio = model_ms / paper_row[k]
                    assert 1 / 3.0 <= ratio <= 3.0, (name, W, SIZES[k], ratio)

    def test_best_cells_within_2x(self, table):
        for name in TABLE3_ORDER:
            for k in range(len(SIZES)):
                ratio = best(table, name, k) / paper_best_ms(name, k)
                assert 1 / 2.7 <= ratio <= 2.0, (name, SIZES[k], ratio)

    def test_large_size_cells_within_35pct(self, table):
        """At 16K² and 32K² — where bandwidth dominates and the calibration
        is most meaningful — every best-W prediction is within 35 %."""
        for name in TABLE3_ORDER:
            for k in (SIZES.index(16384), SIZES.index(32768)):
                ratio = best(table, name, k) / paper_best_ms(name, k)
                assert 0.65 <= ratio <= 1.35, (name, SIZES[k], ratio)

    def test_overhead_row_arithmetic(self):
        oh = overhead_row([2.0, 3.0], [1.0, 2.0])
        assert oh == [100.0, 50.0]


class TestRendering:
    def test_render_contains_all_algorithms(self):
        text = render_table3()
        for name in TABLE3_ORDER:
            assert name in text
        assert "overhead" in text
        assert "32K^2" in text

    def test_render_marks_best_width(self):
        text = render_table3(compare_paper=False)
        assert "*" in text
