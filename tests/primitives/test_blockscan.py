"""Block-level inclusive scan (two-level warp scheme)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.gpusim import GPU
from repro.primitives.blockscan import block_inclusive_scan, block_reduce_sum


def scan_in_block(values, threads):
    gpu = GPU()
    out = {}

    def k(ctx, values):
        out["scan"] = block_inclusive_scan(ctx, values)
    gpu.launch(k, grid_blocks=1, threads_per_block=threads, args=(values,))
    return out["scan"]


class TestBlockScan:
    @pytest.mark.parametrize("threads", [32, 64, 256, 1024])
    def test_matches_cumsum(self, threads, rng):
        vals = rng.integers(0, 50, size=threads).astype(float)
        assert np.array_equal(scan_in_block(vals, threads), np.cumsum(vals))

    def test_single_warp(self):
        vals = np.arange(32.0)
        assert np.array_equal(scan_in_block(vals, 32), np.cumsum(vals))

    def test_wrong_shape_rejected(self):
        gpu = GPU()

        def k(ctx):
            block_inclusive_scan(ctx, np.zeros(16))
        with pytest.raises(ConfigurationError):
            gpu.launch(k, grid_blocks=1, threads_per_block=32)

    def test_reduce(self):
        gpu = GPU()
        out = {}

        def k(ctx):
            out["sum"] = block_reduce_sum(ctx, np.arange(64.0))
        gpu.launch(k, grid_blocks=1, threads_per_block=64)
        assert out["sum"] == np.arange(64.0).sum()

    def test_uses_shared_scratch(self):
        gpu = GPU()

        def k(ctx):
            block_inclusive_scan(ctx, np.ones(64))
        stats = gpu.launch(k, grid_blocks=1, threads_per_block=64)
        assert stats.traffic.shared_write_requests > 0
        assert stats.traffic.shuffle_ops > 0

    def test_scratch_reusable_across_calls(self):
        """A kernel scanning twice must not re-allocate the scratch."""
        gpu = GPU()
        out = {}

        def k(ctx):
            block_inclusive_scan(ctx, np.ones(64))
            out["second"] = block_inclusive_scan(ctx, np.full(64, 2.0))
        gpu.launch(k, grid_blocks=1, threads_per_block=64)
        assert out["second"][-1] == 128.0

    @settings(deadline=None, max_examples=20)
    @given(nwarps=st.integers(1, 32), seed=st.integers(0, 10_000))
    def test_property(self, nwarps, seed):
        rng = np.random.default_rng(seed)
        vals = rng.normal(size=32 * nwarps)
        assert np.allclose(scan_in_block(vals, 32 * nwarps), np.cumsum(vals))
