"""Tokura column-wise scan: correctness, coalescing, panel look-back."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.gpusim import GPU
from repro.primitives.colscan import ColScanLayout, run_col_scan


def scan_cols(a, *, threads=256, policy="random", seed=0, panel_rows=None,
              max_resident=None):
    gpu = GPU(scheduler_policy=policy, seed=seed,
              max_resident_blocks=max_resident)
    n = a.shape[0]
    src = gpu.alloc("src", a.shape, np.float64, fill=a)
    dst = gpu.alloc("dst", a.shape, np.float64)
    stats = run_col_scan(gpu, src, dst, n=n, panel_rows=panel_rows,
                         threads_per_block=threads)
    return gpu.read("dst"), stats


class TestLayout:
    def test_geometry(self):
        lay = ColScanLayout(n=128, panel_rows=32)
        assert lay.num_strips == 4
        assert lay.num_panels == 4
        assert lay.total_tiles == 16

    def test_panel_major_serials(self):
        lay = ColScanLayout(n=64, panel_rows=32)
        tiles = [lay.serial_to_tile(s) for s in range(lay.total_tiles)]
        assert tiles[:2] == [(0, 0), (1, 0)]  # panel 0 first
        assert tiles[2:] == [(0, 1), (1, 1)]

    def test_misaligned_sizes_rejected(self):
        with pytest.raises(ConfigurationError):
            ColScanLayout(n=100, panel_rows=32)
        with pytest.raises(ConfigurationError):
            ColScanLayout(n=128, panel_rows=48)


class TestCorrectness:
    def test_single_panel(self, rng):
        a = rng.integers(0, 10, size=(32, 32)).astype(float)
        out, _ = scan_cols(a, panel_rows=32)
        assert np.array_equal(out, a.cumsum(axis=0))

    def test_multi_panel_lookback(self, rng):
        a = rng.integers(0, 10, size=(128, 128)).astype(float)
        out, _ = scan_cols(a, panel_rows=32)
        assert np.array_equal(out, a.cumsum(axis=0))

    @pytest.mark.parametrize("policy", ["round_robin", "random", "lifo"])
    def test_policies(self, policy, rng):
        a = rng.normal(size=(96, 96))
        out, _ = scan_cols(a, policy=policy, seed=4, panel_rows=32)
        assert np.allclose(out, a.cumsum(axis=0))

    def test_low_residency(self, rng):
        a = rng.integers(0, 10, size=(96, 96)).astype(float)
        out, _ = scan_cols(a, panel_rows=32, max_resident=2, seed=9)
        assert np.array_equal(out, a.cumsum(axis=0))

    def test_default_panel_choice(self, rng):
        a = rng.integers(0, 10, size=(64, 64)).astype(float)
        out, _ = scan_cols(a)  # panel_rows=None -> derived
        assert np.array_equal(out, a.cumsum(axis=0))


class TestTraffic:
    def test_single_read_single_write(self, rng):
        a = rng.integers(0, 10, size=(128, 128)).astype(float)
        _, stats = scan_cols(a, panel_rows=32)
        n_elem = a.size
        assert n_elem <= stats.traffic.global_read_requests <= 1.3 * n_elem
        assert n_elem <= stats.traffic.global_write_requests <= 1.3 * n_elem

    def test_panel_column_walk_conflict_free(self, rng):
        """The +1 pad makes the shared-memory column walk conflict-free."""
        a = rng.integers(0, 10, size=(64, 64)).astype(float)
        _, stats = scan_cols(a, panel_rows=32)
        assert stats.traffic.shared_bank_conflict_cycles == 0

    def test_reads_coalesced(self, rng):
        """Warp-row loads of 32 consecutive float64 = 8 sectors per 32 lanes."""
        a = rng.integers(0, 10, size=(64, 64)).astype(float)
        _, stats = scan_cols(a, panel_rows=32)
        # Perfectly coalesced float64 traffic: 1 transaction per 4 elements,
        # plus the look-back metadata.
        floor = a.size / 4
        assert stats.traffic.global_read_transactions >= floor
        assert stats.traffic.global_read_transactions <= 1.4 * floor
