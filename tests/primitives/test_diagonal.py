"""Diagonal arrangement (Figure 3): bijectivity and conflict-freedom."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.gpusim import bank_conflict_cycles
from repro.primitives.diagonal import (check_tile_width, col_offsets,
                                       diag_inverse, diag_offset,
                                       full_tile_offsets, row_offsets,
                                       rowmajor_offset)


class TestFigure3:
    """The paper's w = 4 worked example."""

    W = 4

    def test_offsets_match_figure(self):
        # Figure 3: a[i][j] at offset i*w + (i+j) mod w; e.g. a[1][3] -> 4+0.
        assert diag_offset(0, 0, 4) == 0
        assert diag_offset(1, 3, 4) == 4 + 0
        assert diag_offset(3, 1, 4) == 12 + 0
        assert diag_offset(2, 3, 4) == 8 + 1

    def test_row_access_distinct_banks(self):
        offs = row_offsets(1, 4)
        assert len(set(o % 4 for o in offs)) == 4

    def test_col_access_distinct_banks(self):
        offs = col_offsets(1, 4)
        assert len(set(o % 4 for o in offs)) == 4


class TestBijection:
    @pytest.mark.parametrize("W", [32, 64, 128])
    def test_all_offsets_distinct(self, W):
        offs = full_tile_offsets(W, "diagonal")
        assert np.unique(offs).size == W * W
        assert offs.min() == 0 and offs.max() == W * W - 1

    @given(st.sampled_from([32, 64, 128]), st.integers(0, 127),
           st.integers(0, 127))
    def test_inverse(self, W, i, j):
        i, j = i % W, j % W
        off = diag_offset(i, j, W)
        ii, jj = diag_inverse(off, W)
        assert (ii, jj) == (i, j)


class TestConflictFreedom:
    @pytest.mark.parametrize("W", [32, 64, 128])
    def test_every_row_conflict_free(self, W):
        for i in range(W):
            assert bank_conflict_cycles(row_offsets(i, W)) == 0

    @pytest.mark.parametrize("W", [32, 64, 128])
    def test_every_column_conflict_free(self, W):
        for j in range(W):
            assert bank_conflict_cycles(col_offsets(j, W)) == 0

    def test_rowmajor_columns_fully_conflicted(self):
        """The ablation baseline: row-major columns serialize 32 ways."""
        W = 32
        offs = rowmajor_offset(np.arange(W), 5, W)
        assert bank_conflict_cycles(offs) == 31

    def test_rowmajor_rows_conflict_free(self):
        W = 32
        offs = rowmajor_offset(5, np.arange(W), W)
        assert bank_conflict_cycles(offs) == 0


class TestValidation:
    def test_width_must_be_warp_multiple(self):
        with pytest.raises(ConfigurationError):
            check_tile_width(48)

    def test_width_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            check_tile_width(0)

    def test_valid_widths_accepted(self):
        for W in (32, 64, 96, 128):
            check_tile_width(W)

    def test_unknown_layout_rejected(self):
        with pytest.raises(ConfigurationError):
            full_tile_offsets(32, "zigzag")
