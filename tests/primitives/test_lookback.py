"""The generic decoupled look-back walker: publish/walk protocol semantics."""

import numpy as np
import pytest

from repro.errors import ProtocolError
from repro.gpusim import GPU, TINY_DEVICE
from repro.primitives.lookback import lookback_walk, publish


def chain_scan_kernel(ctx, counter, status, locals_, globals_, out, N):
    """N partitions, each holding local value (p+1); global aggregates built
    via look-back.  Tests the exact A/P protocol used everywhere."""
    while True:
        p = ctx.atomic_add(counter, 0, 1)
        if p >= N:
            return
        local = float(p + 1)
        publish(ctx, [(locals_, np.asarray([p]), np.asarray([local]))],
                status, p, 1)
        exclusive = yield from lookback_walk(
            ctx, steps=range(p - 1, -1, -1),
            status_buf=status, status_index=lambda q: q,
            local_threshold=1, global_threshold=2,
            read_local=lambda q: ctx.gload_scalar(locals_, q),
            read_global=lambda q: ctx.gload_scalar(globals_, q),
            zero=0.0)
        publish(ctx, [(globals_, np.asarray([p]),
                       np.asarray([exclusive + local]))], status, p, 2)
        ctx.gstore_scalar(out, p, exclusive + local)


def run_chain(N=16, *, seed=0, policy="random", max_resident=None):
    gpu = GPU(device=TINY_DEVICE, scheduler_policy=policy, seed=seed,
              max_resident_blocks=max_resident)
    counter = gpu.alloc("c", (1,), np.int64)
    status = gpu.alloc("s", (N,), np.int64)
    locals_ = gpu.alloc("l", (N,), np.float64)
    globals_ = gpu.alloc("g", (N,), np.float64)
    out = gpu.alloc("o", (N,), np.float64)
    stats = gpu.launch(chain_scan_kernel, grid_blocks=N, threads_per_block=32,
                       args=(counter, status, locals_, globals_, out, N))
    return gpu.read("o"), stats


class TestLookbackWalk:
    def test_inclusive_prefixes_correct(self):
        out, _ = run_chain(16, seed=1)
        assert np.array_equal(out, np.cumsum(np.arange(1.0, 17.0)))

    @pytest.mark.parametrize("policy", ["round_robin", "random", "lifo"])
    @pytest.mark.parametrize("max_resident", [1, 2, 4])
    def test_all_schedules(self, policy, max_resident):
        expect = np.cumsum(np.arange(1.0, 13.0))
        for seed in range(3):
            out, _ = run_chain(12, seed=seed, policy=policy,
                               max_resident=max_resident)
            assert np.array_equal(out, expect), (policy, max_resident, seed)

    def test_empty_steps_returns_zero(self):
        """Partition 0 walks nothing and gets the additive identity."""
        out, _ = run_chain(1)
        assert out[0] == 1.0

    def test_vector_accumulation(self):
        """The walker works element-wise on vector aggregates."""
        gpu = GPU(device=TINY_DEVICE, seed=3, scheduler_policy="random",
                  max_resident_blocks=2)
        N, W = 6, 4
        counter = gpu.alloc("c", (1,), np.int64)
        status = gpu.alloc("s", (N,), np.int64)
        locals_ = gpu.alloc("l", (N, W), np.float64)
        globals_ = gpu.alloc("g", (N, W), np.float64)

        def k(ctx, counter, status, locals_, globals_):
            while True:
                p = ctx.atomic_add(counter, 0, 1)
                if p >= N:
                    return
                vec = np.full(W, float(p + 1))
                idx = p * W + np.arange(W)
                publish(ctx, [(locals_, idx, vec)], status, p, 1)
                excl = yield from lookback_walk(
                    ctx, steps=range(p - 1, -1, -1),
                    status_buf=status, status_index=lambda q: q,
                    local_threshold=1, global_threshold=2,
                    read_local=lambda q: ctx.gload(locals_,
                                                   q * W + np.arange(W)),
                    read_global=lambda q: ctx.gload(globals_,
                                                    q * W + np.arange(W)),
                    zero=np.zeros(W))
                publish(ctx, [(globals_, idx, excl + vec)], status, p, 2)

        gpu.launch(k, grid_blocks=N, threads_per_block=32,
                   args=(counter, status, locals_, globals_))
        expect = np.cumsum(np.arange(1.0, N + 1))
        assert np.array_equal(gpu.read("g"), np.tile(expect[:, None], (1, W)))

    def test_walk_stops_at_first_global(self):
        """Once a predecessor exposes a global aggregate the walk must not
        read further back (bounded look-back depth)."""
        reads = []
        gpu = GPU(device=TINY_DEVICE, consistency="strong")
        status = gpu.alloc("s", (8,), np.int64,
                           fill=np.array([2, 1, 1, 2, 1, 1, 1, 0]))
        locals_ = gpu.alloc("l", (8,), np.float64,
                            fill=np.arange(1.0, 9.0))
        globals_ = gpu.alloc("g", (8,), np.float64,
                             fill=np.arange(1.0, 9.0).cumsum())

        def k(ctx, status, locals_, globals_):
            def rl(q):
                reads.append(("local", q))
                return ctx.gload_scalar(locals_, q)

            def rg(q):
                reads.append(("global", q))
                return ctx.gload_scalar(globals_, q)

            result = yield from lookback_walk(
                ctx, steps=range(6, -1, -1), status_buf=status,
                status_index=lambda q: q, local_threshold=1,
                global_threshold=2, read_local=rl, read_global=rg, zero=0.0)
            ctx.gstore_scalar(locals_, 7, result)

        gpu.launch(k, grid_blocks=1, threads_per_block=32,
                   args=(status, locals_, globals_))
        # Walk: locals at 6, 5, 4, then global at 3; never touches 2, 1, 0.
        assert reads == [("local", 6), ("local", 5), ("local", 4),
                         ("global", 3)]
        # locals_[q] == q + 1 and globals_[3] == 1+2+3+4.
        assert gpu.read("l")[7] == 7 + 6 + 5 + (1 + 2 + 3 + 4)


class TestPublishMonotonicity:
    """publish() must strictly increase the committed status byte: a walker
    that already acted on value v may not see v re-published (regression test
    for the strict-increase assertion)."""

    @staticmethod
    def _publish_twice(first: int, second: int, consistency: str = "relaxed"):
        gpu = GPU(device=TINY_DEVICE, consistency=consistency, seed=0)
        data = gpu.alloc("d", (1,), np.float64)
        status = gpu.alloc("s", (1,), np.int64, fill=0)

        def k(ctx, data, status):
            publish(ctx, [(data, np.asarray([0]), np.asarray([1.0]))],
                    status, 0, first)
            yield ctx.syncthreads()
            publish(ctx, [(data, np.asarray([0]), np.asarray([2.0]))],
                    status, 0, second)

        gpu.launch(k, grid_blocks=1, threads_per_block=32,
                   args=(data, status))
        return gpu

    @pytest.mark.parametrize("consistency", ["strong", "relaxed"])
    def test_republishing_same_value_raises(self, consistency):
        with pytest.raises(ProtocolError, match="strictly increase"):
            self._publish_twice(1, 1, consistency)

    def test_decreasing_value_raises(self):
        with pytest.raises(ProtocolError, match="strictly increase"):
            self._publish_twice(2, 1)

    def test_increasing_values_are_fine(self):
        gpu = self._publish_twice(1, 2)
        assert gpu.read("s")[0] == 2

    def test_error_names_buffer_and_value(self):
        with pytest.raises(ProtocolError, match=r"'s'\[0\].*status 1"):
            self._publish_twice(1, 1)
