"""Host prefix-sum references and partition arithmetic."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.primitives.prefix_sum import (exclusive_scan, inclusive_scan,
                                         num_partitions, partition_bounds,
                                         sequential_inclusive_scan)


class TestScans:
    def test_inclusive_1d(self):
        assert np.array_equal(inclusive_scan(np.array([1, 2, 3])),
                              np.array([1, 3, 6]))

    def test_exclusive_1d(self):
        assert np.array_equal(exclusive_scan(np.array([1, 2, 3])),
                              np.array([0, 1, 3]))

    def test_inclusive_axis0(self):
        m = np.arange(6).reshape(2, 3)
        assert np.array_equal(inclusive_scan(m, axis=0), m.cumsum(axis=0))

    def test_exclusive_axis1(self):
        m = np.arange(6.0).reshape(2, 3)
        out = exclusive_scan(m, axis=1)
        assert np.array_equal(out[:, 0], np.zeros(2))
        assert np.array_equal(out[:, 1:], m.cumsum(axis=1)[:, :-1])

    def test_multidim_needs_axis(self):
        with pytest.raises(ConfigurationError):
            inclusive_scan(np.zeros((2, 2)))
        with pytest.raises(ConfigurationError):
            exclusive_scan(np.zeros((2, 2)))

    def test_sequential_matches_vectorised(self):
        vals = np.array([5, -2, 7, 0, 3])
        assert np.array_equal(sequential_inclusive_scan(vals),
                              inclusive_scan(vals))

    def test_sequential_does_not_mutate(self):
        vals = np.array([1, 2, 3])
        sequential_inclusive_scan(vals)
        assert np.array_equal(vals, [1, 2, 3])

    @given(st.lists(st.integers(-100, 100), min_size=1, max_size=50))
    def test_inclusive_exclusive_relation(self, values):
        v = np.asarray(values)
        assert np.array_equal(inclusive_scan(v) - v, exclusive_scan(v))


class TestPartitions:
    def test_exact_division(self):
        assert num_partitions(100, 25) == 4

    def test_ragged_division(self):
        assert num_partitions(100, 30) == 4

    def test_single(self):
        assert num_partitions(5, 100) == 1

    def test_invalid_size(self):
        with pytest.raises(ConfigurationError):
            num_partitions(10, 0)

    def test_bounds(self):
        assert partition_bounds(0, 30, 100) == (0, 30)
        assert partition_bounds(3, 30, 100) == (90, 100)

    def test_bounds_out_of_range(self):
        with pytest.raises(ConfigurationError):
            partition_bounds(4, 30, 100)

    @given(st.integers(1, 1000), st.integers(1, 64))
    def test_partitions_cover_exactly(self, n, size):
        parts = num_partitions(n, size)
        covered = 0
        prev_hi = 0
        for p in range(parts):
            lo, hi = partition_bounds(p, size, n)
            assert lo == prev_hi
            covered += hi - lo
            prev_hi = hi
        assert covered == n
