"""Merrill–Garland single-pass row scan: correctness under adversarial
scheduling, traffic shape, layout arithmetic."""

import numpy as np
import pytest

from repro.gpusim import GPU
from repro.primitives.scan1d import RowScanLayout, run_row_scan


def scan_rows(a, *, threads=64, policy="random", seed=0, partition=None,
              max_resident=None):
    gpu = GPU(scheduler_policy=policy, seed=seed,
              max_resident_blocks=max_resident)
    rows, n = a.shape
    src = gpu.alloc("src", a.shape, np.float64, fill=a)
    dst = gpu.alloc("dst", a.shape, np.float64)
    stats = run_row_scan(gpu, src, dst, rows=rows, n=n,
                         partition_size=partition, threads_per_block=threads)
    return gpu.read("dst"), stats


class TestLayout:
    def test_parts_per_row(self):
        lay = RowScanLayout(rows=4, n=100, partition_size=32)
        assert lay.parts_per_row == 4
        assert lay.total_parts == 16

    def test_serial_order_is_partition_major(self):
        lay = RowScanLayout(rows=3, n=64, partition_size=32)
        tiles = [lay.serial_to_tile(s) for s in range(lay.total_parts)]
        # All partition-0 tiles come first.
        assert tiles[:3] == [(0, 0), (1, 0), (2, 0)]
        assert tiles[3:] == [(0, 1), (1, 1), (2, 1)]

    def test_predecessors_have_smaller_serials(self):
        lay = RowScanLayout(rows=5, n=96, partition_size=32)
        serial_of = {lay.serial_to_tile(s): s for s in range(lay.total_parts)}
        for (row, part), s in serial_of.items():
            if part > 0:
                assert serial_of[(row, part - 1)] < s


class TestCorrectness:
    def test_single_partition_rows(self, rng):
        a = rng.integers(0, 10, size=(8, 64)).astype(float)
        out, _ = scan_rows(a, threads=64)
        assert np.array_equal(out, a.cumsum(axis=1))

    def test_multi_partition_rows(self, rng):
        a = rng.integers(0, 10, size=(6, 256)).astype(float)
        out, _ = scan_rows(a, threads=64)
        assert np.array_equal(out, a.cumsum(axis=1))

    def test_ragged_last_partition(self, rng):
        a = rng.integers(0, 10, size=(4, 96)).astype(float)
        out, _ = scan_rows(a, threads=64)  # 96 = 64 + 32
        assert np.array_equal(out, a.cumsum(axis=1))

    @pytest.mark.parametrize("policy", ["round_robin", "random", "lifo"])
    def test_policies(self, policy, rng):
        a = rng.normal(size=(4, 128))
        out, _ = scan_rows(a, policy=policy, seed=3)
        assert np.allclose(out, a.cumsum(axis=1))

    def test_low_residency(self, rng):
        a = rng.integers(0, 10, size=(4, 256)).astype(float)
        out, _ = scan_rows(a, max_resident=2, seed=5)
        assert np.array_equal(out, a.cumsum(axis=1))

    def test_in_place(self, rng):
        """dst may alias src (the 2R2W-optimal row phase runs in place)."""
        a = rng.integers(0, 10, size=(4, 128)).astype(float)
        gpu = GPU(seed=1)
        buf = gpu.alloc("x", a.shape, np.float64, fill=a)
        run_row_scan(gpu, buf, buf, rows=4, n=128, threads_per_block=64)
        assert np.array_equal(gpu.read("x"), a.cumsum(axis=1))


class TestTraffic:
    def test_one_read_one_write_per_element(self, rng):
        a = rng.integers(0, 10, size=(8, 256)).astype(float)
        _, stats = scan_rows(a, threads=64)
        n_elem = a.size
        assert stats.traffic.global_read_requests >= n_elem
        assert stats.traffic.global_read_requests <= 1.3 * n_elem
        assert stats.traffic.global_write_requests >= n_elem
        assert stats.traffic.global_write_requests <= 1.3 * n_elem

    def test_scratch_freed(self, rng):
        a = rng.integers(0, 10, size=(4, 64)).astype(float)
        gpu = GPU(seed=1)
        src = gpu.alloc("src", a.shape, np.float64, fill=a)
        dst = gpu.alloc("dst", a.shape, np.float64)
        before = gpu.memory.allocated_bytes
        run_row_scan(gpu, src, dst, rows=4, n=64, threads_per_block=64)
        assert gpu.memory.allocated_bytes == before
