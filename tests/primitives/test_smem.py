"""Kernel-side shared-memory tile operations (Section II building blocks)."""

import numpy as np
import pytest

from repro.gpusim import GPU
from repro.primitives import smem


def run_block(kernel, *args, threads=1024, gpu=None):
    gpu = gpu or GPU(consistency="strong")
    stats = gpu.launch(kernel, grid_blocks=1, threads_per_block=threads,
                       args=args)
    return gpu, stats


@pytest.fixture
def tile_setup(rng):
    """A 64x64 matrix on a GPU plus its (1, 0) tile at W=32."""
    a = rng.integers(0, 10, size=(64, 64)).astype(float)
    gpu = GPU(consistency="strong")
    buf = gpu.alloc("a", a.shape, np.float64, fill=a)
    return gpu, buf, a


class TestCopy:
    @pytest.mark.parametrize("layout", ["diagonal", "rowmajor"])
    def test_roundtrip(self, tile_setup, layout):
        gpu, buf, a = tile_setup
        out_buf = gpu.alloc("out", a.shape, np.float64)

        def k(ctx, a_buf, out_buf):
            smem.alloc_tile(ctx, "t", 32)
            smem.load_tile(ctx, a_buf, 64, 32, 1, 0, "t", layout)
            yield ctx.syncthreads()
            smem.store_tile(ctx, out_buf, 64, 32, 1, 0, "t", layout)
        run_block(k, buf, out_buf, gpu=gpu)
        assert np.array_equal(gpu.read("out")[32:, :32], a[32:, :32])

    def test_load_is_coalesced(self, tile_setup):
        gpu, buf, a = tile_setup

        def k(ctx, a_buf):
            smem.alloc_tile(ctx, "t", 32)
            smem.load_tile(ctx, a_buf, 64, 32, 0, 0, "t")
        _, stats = run_block(k, buf, gpu=gpu)
        # 1024 float64 elements, rows of 32 within a 64-wide matrix:
        # 8 sectors per 32-element row, 32 rows.
        assert stats.traffic.global_read_transactions == 8 * 32

    def test_fused_col_sums(self, tile_setup):
        gpu, buf, a = tile_setup
        got = {}

        def k(ctx, a_buf):
            smem.alloc_tile(ctx, "t", 32)
            got["lcs"] = smem.load_tile_with_col_sums(ctx, a_buf, 64, 32, 1, 1,
                                                      "t")
        run_block(k, buf, gpu=gpu)
        assert np.array_equal(got["lcs"], a[32:, 32:].sum(axis=0))

    def test_diagonal_layout_conflict_free(self, tile_setup):
        gpu, buf, a = tile_setup

        def k(ctx, a_buf):
            smem.alloc_tile(ctx, "t", 32)
            smem.load_tile(ctx, a_buf, 64, 32, 0, 0, "t", "diagonal")
            yield ctx.syncthreads()
            smem.tile_row_prefix_sums(ctx, "t", 32, "diagonal")
            smem.tile_col_prefix_sums(ctx, "t", 32, "diagonal")
        _, stats = run_block(k, buf, gpu=gpu)
        assert stats.traffic.shared_bank_conflict_cycles == 0

    def test_rowmajor_layout_conflicts(self, tile_setup):
        """Ablation: the row-major layout serializes the row-prefix phase
        (column-wise warp accesses)."""
        gpu, buf, a = tile_setup

        def k(ctx, a_buf):
            smem.alloc_tile(ctx, "t", 32)
            smem.load_tile(ctx, a_buf, 64, 32, 0, 0, "t", "rowmajor")
            yield ctx.syncthreads()
            smem.tile_row_prefix_sums(ctx, "t", 32, "rowmajor")
        _, stats = run_block(k, buf, gpu=gpu)
        # 31 prefix steps, each a read+read+write of a 32-way-conflicted column.
        assert stats.traffic.shared_bank_conflict_cycles >= 31 * 3 * 31


class TestPrefixAndSums:
    def _with_tile(self, a_tile, fn, threads=1024):
        gpu = GPU(consistency="strong")
        buf = gpu.alloc("a", (32, 32), np.float64, fill=a_tile)
        out = {}

        def k(ctx, a_buf):
            smem.alloc_tile(ctx, "t", 32)
            smem.load_tile(ctx, a_buf, 32, 32, 0, 0, "t")
            yield ctx.syncthreads()
            fn(ctx, out)
        run_block(k, buf, threads=threads, gpu=gpu)
        return out

    def test_row_prefix(self, rng):
        a = rng.integers(0, 10, size=(32, 32)).astype(float)

        def fn(ctx, out):
            smem.tile_row_prefix_sums(ctx, "t", 32)
            out["rows"] = np.array([smem.read_row(ctx, "t", 32, i)
                                    for i in range(32)])
        out = self._with_tile(a, fn)
        assert np.array_equal(out["rows"], a.cumsum(axis=1))

    def test_col_prefix(self, rng):
        a = rng.integers(0, 10, size=(32, 32)).astype(float)

        def fn(ctx, out):
            smem.tile_col_prefix_sums(ctx, "t", 32)
            out["cols"] = np.array([smem.read_col(ctx, "t", 32, j)
                                    for j in range(32)]).T
        out = self._with_tile(a, fn)
        assert np.array_equal(out["cols"], a.cumsum(axis=0))

    def test_row_and_col_sums(self, rng):
        a = rng.integers(0, 10, size=(32, 32)).astype(float)

        def fn(ctx, out):
            out["lrs"] = smem.tile_row_sums(ctx, "t", 32)
            out["lcs"] = smem.tile_col_sums(ctx, "t", 32)
        out = self._with_tile(a, fn)
        assert np.array_equal(out["lrs"], a.sum(axis=1))
        assert np.array_equal(out["lcs"], a.sum(axis=0))

    def test_boundary_updates(self, rng):
        a = rng.integers(0, 10, size=(32, 32)).astype(float)
        grs = rng.integers(0, 10, size=32).astype(float)
        gcs = rng.integers(0, 10, size=32).astype(float)

        def fn(ctx, out):
            smem.add_to_col(ctx, "t", 32, 0, grs)
            smem.add_to_row(ctx, "t", 32, 0, gcs)
            smem.add_to_element(ctx, "t", 32, 0, 0, 100.0)
            out["row0"] = smem.read_row(ctx, "t", 32, 0)
            out["col0"] = smem.read_col(ctx, "t", 32, 0)
        out = self._with_tile(a, fn)
        expect = a.copy()
        expect[:, 0] += grs
        expect[0, :] += gcs
        expect[0, 0] += 100.0
        assert np.array_equal(out["row0"], expect[0, :])
        assert np.array_equal(out["col0"], expect[:, 0])

    def test_shared_sat_pipeline(self, rng):
        """Steps 1-4 of the shared memory SAT algorithm end to end."""
        a = rng.integers(0, 10, size=(32, 32)).astype(float)
        gpu = GPU(consistency="strong")
        buf = gpu.alloc("a", (32, 32), np.float64, fill=a)
        out_buf = gpu.alloc("b", (32, 32), np.float64)

        def k(ctx, a_buf, b_buf):
            smem.alloc_tile(ctx, "t", 32)
            smem.load_tile(ctx, a_buf, 32, 32, 0, 0, "t")
            yield ctx.syncthreads()
            smem.tile_row_prefix_sums(ctx, "t", 32)
            yield ctx.syncthreads()
            smem.tile_col_prefix_sums(ctx, "t", 32)
            yield ctx.syncthreads()
            smem.store_tile(ctx, b_buf, 32, 32, 0, 0, "t")
        run_block(k, buf, out_buf, gpu=gpu)
        assert np.array_equal(gpu.read("b"), a.cumsum(axis=1).cumsum(axis=0))

    def test_chunked_copy_matches_m_parameter(self, rng):
        """With fewer threads than tile elements, the copy runs in m passes
        (the paper's W²/m threads, m elements per thread)."""
        a = rng.integers(0, 10, size=(32, 32)).astype(float)

        def fn(ctx, out):
            out["lrs"] = smem.tile_row_sums(ctx, "t", 32)
        out = self._with_tile(a, fn, threads=256)  # m = 4
        assert np.array_equal(out["lrs"], a.sum(axis=1))
