"""Tile region-sum algebra (Table II): definitions, recurrences, assembly."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.primitives.tile import (TileGrid, assemble_gsat_tile,
                                   assemble_gsat_tile_skss,
                                   global_col_prefixes, global_col_sums,
                                   global_l_sum, global_row_sums,
                                   global_sat_tile, global_sum,
                                   local_col_sums, local_row_sums, local_sum,
                                   tile_view)
from repro.sat.reference import sat_reference


@pytest.fixture
def grid():
    return TileGrid(n=12, W=4)


@pytest.fixture
def matrix(rng):
    return rng.integers(0, 10, size=(12, 12)).astype(np.float64)


class TestTileGrid:
    def test_geometry(self, grid):
        assert grid.tiles_per_side == 3
        assert grid.num_tiles == 9
        assert grid.num_diagonals == 5

    def test_ragged_size_pads_up(self):
        grid = TileGrid(n=10, W=4)
        assert not grid.aligned
        assert grid.tiles_per_side == 3
        assert grid.padded_rows == grid.padded_cols == 12

    def test_tile_slice(self, grid, matrix):
        view = tile_view(matrix, grid, 1, 2)
        assert view.shape == (4, 4)
        assert np.array_equal(view, matrix[4:8, 8:12])

    def test_out_of_range_tile(self, grid):
        with pytest.raises(ConfigurationError):
            grid.check_tile(3, 0)
        with pytest.raises(ConfigurationError):
            grid.check_tile(0, -1)

    def test_diagonals_partition_tiles(self, grid):
        seen = []
        for K in range(grid.num_diagonals):
            tiles = grid.tiles_on_diagonal(K)
            assert all(I + J == K for I, J in tiles)
            seen.extend(tiles)
        assert sorted(seen) == sorted(grid.all_tiles())

    def test_diagonal_sizes(self):
        grid = TileGrid(n=20, W=4)  # t = 5
        sizes = [len(grid.tiles_on_diagonal(K)) for K in range(9)]
        assert sizes == [1, 2, 3, 4, 5, 4, 3, 2, 1]


class TestRegionSums:
    def test_local_sums(self, grid, matrix):
        tile = matrix[4:8, 0:4]
        assert np.array_equal(local_row_sums(matrix, grid, 1, 0),
                              tile.sum(axis=1))
        assert np.array_equal(local_col_sums(matrix, grid, 1, 0),
                              tile.sum(axis=0))
        assert local_sum(matrix, grid, 1, 0) == tile.sum()

    def test_global_row_sums_definition(self, grid, matrix):
        got = global_row_sums(matrix, grid, 1, 1)
        expect = matrix[4:8, :8].sum(axis=1)
        assert np.array_equal(got, expect)

    def test_global_col_sums_definition(self, grid, matrix):
        got = global_col_sums(matrix, grid, 1, 1)
        expect = matrix[:8, 4:8].sum(axis=0)
        assert np.array_equal(got, expect)

    def test_global_sum_definition(self, grid, matrix):
        assert global_sum(matrix, grid, 1, 2) == matrix[:8, :].sum()

    def test_negative_indices_are_empty_regions(self, grid, matrix):
        assert np.array_equal(global_row_sums(matrix, grid, 0, -1), np.zeros(4))
        assert np.array_equal(global_col_sums(matrix, grid, -1, 0), np.zeros(4))
        assert global_sum(matrix, grid, -1, 2) == 0
        assert global_sum(matrix, grid, 2, -1) == 0

    def test_grs_recurrence(self, grid, matrix):
        """GRS(I, J) = GRS(I, J-1) + LRS(I, J) — the Figure 10 identity."""
        for I in range(3):
            for J in range(3):
                assert np.array_equal(
                    global_row_sums(matrix, grid, I, J),
                    global_row_sums(matrix, grid, I, J - 1)
                    + local_row_sums(matrix, grid, I, J))

    def test_gcs_recurrence(self, grid, matrix):
        for I in range(3):
            for J in range(3):
                assert np.array_equal(
                    global_col_sums(matrix, grid, I, J),
                    global_col_sums(matrix, grid, I - 1, J)
                    + local_col_sums(matrix, grid, I, J))

    def test_gls_is_gnomon(self, grid, matrix):
        """GLS(I, J) = GS(I, J) - GS(I-1, J-1)."""
        for I in range(3):
            for J in range(3):
                assert global_l_sum(matrix, grid, I, J) == \
                    global_sum(matrix, grid, I, J) \
                    - global_sum(matrix, grid, I - 1, J - 1)

    def test_gls_step31_identity(self, grid, matrix):
        """Figure 11: GLS = sum(GRS(I,J-1)) + sum(GCS(I-1,J)) + sum(LRS)."""
        for I in range(3):
            for J in range(3):
                lhs = global_l_sum(matrix, grid, I, J)
                rhs = (global_row_sums(matrix, grid, I, J - 1).sum()
                       + global_col_sums(matrix, grid, I - 1, J).sum()
                       + local_row_sums(matrix, grid, I, J).sum())
                assert lhs == rhs

    def test_gs_diagonal_telescoping(self):
        """GS(I-1, J-1) = GS(I-k, J-k) + sum of GLS along the diagonal —
        the Step 3.2 look-back identity."""
        rng = np.random.default_rng(3)
        grid = TileGrid(n=20, W=4)
        m = rng.integers(0, 7, size=(20, 20)).astype(np.float64)
        I, J = 4, 3
        for k in range(1, min(I, J) + 1):
            gls_sum = sum(global_l_sum(m, grid, I - c, J - c)
                          for c in range(1, k + 1))
            assert global_sum(m, grid, I - 1, J - 1) == \
                global_sum(m, grid, I - k - 1, J - k - 1) + gls_sum

    def test_gcp_is_bottom_row_of_gsat(self, grid, matrix):
        for I in range(3):
            for J in range(3):
                gsat = global_sat_tile(matrix, grid, I, J)
                assert np.array_equal(global_col_prefixes(matrix, grid, I, J),
                                      gsat[-1, :])

    def test_gsat_matches_reference_sat(self, grid, matrix):
        full = sat_reference(matrix)
        for I in range(3):
            for J in range(3):
                assert np.array_equal(global_sat_tile(matrix, grid, I, J),
                                      full[grid.tile_slice(I, J)])

    def test_gs_is_gsat_corner(self, grid, matrix):
        for I in range(3):
            for J in range(3):
                assert global_sum(matrix, grid, I, J) == \
                    global_sat_tile(matrix, grid, I, J)[-1, -1]


class TestAssembly:
    def test_assemble_matches_gsat(self, grid, matrix):
        """The 1R1W-family Step 4 (boundary add + double prefix) is exact."""
        for I in range(3):
            for J in range(3):
                got = assemble_gsat_tile(
                    tile_view(matrix, grid, I, J),
                    global_row_sums(matrix, grid, I, J - 1),
                    global_col_sums(matrix, grid, I - 1, J),
                    global_sum(matrix, grid, I - 1, J - 1))
                assert np.array_equal(got, global_sat_tile(matrix, grid, I, J))

    def test_assemble_skss_matches_gsat(self, grid, matrix):
        """The SKSS variant (GCP added after the row prefix) is also exact."""
        for I in range(3):
            for J in range(3):
                got = assemble_gsat_tile_skss(
                    tile_view(matrix, grid, I, J),
                    global_row_sums(matrix, grid, I, J - 1),
                    global_col_prefixes(matrix, grid, I - 1, J))
                assert np.array_equal(got, global_sat_tile(matrix, grid, I, J))

    def test_assemble_does_not_mutate_input(self, grid, matrix):
        tile = tile_view(matrix, grid, 0, 0).copy()
        assemble_gsat_tile(tile, np.zeros(4), np.zeros(4), 0.0)
        assert np.array_equal(tile, tile_view(matrix, grid, 0, 0))


@settings(deadline=None, max_examples=30)
@given(t=st.integers(1, 4), W=st.sampled_from([2, 4, 8]),
       seed=st.integers(0, 10_000))
def test_property_assembly_reconstructs_sat(t, W, seed):
    """For any tile geometry, assembling every tile from its Table II boundary
    terms reproduces the full SAT exactly (integer matrices)."""
    n = t * W
    rng = np.random.default_rng(seed)
    m = rng.integers(-20, 20, size=(n, n)).astype(np.float64)
    grid = TileGrid(n=n, W=W)
    out = np.zeros_like(m)
    for I in range(t):
        for J in range(t):
            out[grid.tile_slice(I, J)] = assemble_gsat_tile(
                tile_view(m, grid, I, J),
                global_row_sums(m, grid, I, J - 1),
                global_col_sums(m, grid, I - 1, J),
                global_sum(m, grid, I - 1, J - 1))
    assert np.array_equal(out, sat_reference(m))
