"""Tile acquisition order ablation (why Figure 9's numbering is the one).

The soundness invariant is "every dependency has a smaller serial".  The
paper's diagonal-major order satisfies it; row-major happens to as well (but
pipelines worse); a reversed order violates it and must deadlock as soon as
block residency is bounded.
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError, DeadlockError
from repro.gpusim import GPU, TINY_DEVICE
from repro.sat import sat_reference
from repro.sat.skss_lb import (ACQUISITION_ORDERS, SKSSLB1R1W,
                               acquisition_tile, tile_serial_number)


class TestMapping:
    def test_diagonal_is_figure9(self):
        for s in range(25):
            I, J = acquisition_tile(s, 5, "diagonal")
            assert tile_serial_number(I, J, 5) == s

    def test_rowmajor(self):
        assert acquisition_tile(0, 4, "rowmajor") == (0, 0)
        assert acquisition_tile(5, 4, "rowmajor") == (1, 1)

    def test_reversed_starts_at_bottom_right(self):
        assert acquisition_tile(0, 4, "reversed") == (3, 3)

    def test_unknown_order(self):
        with pytest.raises(ConfigurationError):
            acquisition_tile(0, 4, "spiral")
        with pytest.raises(ConfigurationError):
            SKSSLB1R1W(acquisition="spiral")

    def test_rowmajor_also_satisfies_invariant(self):
        """Row-major serials: left/up/diagonal neighbours are all smaller."""
        t = 6
        for I in range(t):
            for J in range(t):
                s = I * t + J
                if J > 0:
                    assert I * t + (J - 1) < s
                if I > 0:
                    assert (I - 1) * t + J < s


class TestExecution:
    def test_rowmajor_correct_under_low_residency(self, small_matrix):
        res = SKSSLB1R1W(acquisition="rowmajor").run(
            small_matrix, GPU(device=TINY_DEVICE, seed=2,
                              scheduler_policy="lifo", max_resident_blocks=2))
        assert np.array_equal(res.sat, sat_reference(small_matrix))

    def test_reversed_deadlocks_under_low_residency(self, small_matrix):
        """Bottom-right tiles acquired first wait on tiles that can never
        launch: the exact failure Figure 9's ordering prevents."""
        gpu = GPU(device=TINY_DEVICE, seed=2, max_resident_blocks=2)
        with pytest.raises(DeadlockError):
            SKSSLB1R1W(acquisition="reversed").run(small_matrix, gpu)

    def test_reversed_survives_full_residency(self, small_matrix):
        """With every block resident, even the reversed order completes —
        the hazard is an interaction with the dispatcher, which is why it
        cannot be found by testing on one configuration."""
        tiles = (small_matrix.shape[0] // 32) ** 2
        gpu = GPU(device=TINY_DEVICE, seed=2, max_resident_blocks=tiles)
        res = SKSSLB1R1W(acquisition="reversed").run(small_matrix, gpu)
        assert np.array_equal(res.sat, sat_reference(small_matrix))

    def test_all_safe_orders_same_result(self, small_matrix):
        outs = []
        for order in ("diagonal", "rowmajor"):
            res = SKSSLB1R1W(acquisition=order).run(small_matrix, GPU(seed=5))
            outs.append(res.sat)
        assert np.array_equal(outs[0], outs[1])

    def test_orders_tuple(self):
        assert ACQUISITION_ORDERS == ("diagonal", "rowmajor", "reversed",
                                      "swapped")


class TestSwappedOrder:
    """The subtle planted bug: deadlocks only at residency one, so random
    schedule sampling at any higher residency can never find it (the
    exhaustive model checker does — see tests/analysis/test_modelcheck.py)."""

    def test_swap_only_exchanges_serials_1_and_3(self):
        for s in range(9):
            expected = acquisition_tile({1: 3, 3: 1}.get(s, s), 3, "diagonal")
            assert acquisition_tile(s, 3, "swapped") == expected

    def test_tiny_grids_are_untouched(self):
        # Fewer than 4 tiles: nothing to swap, identical to diagonal.
        assert acquisition_tile(0, 1, "swapped") == (0, 0)
        for s in range(2):
            assert acquisition_tile(s, 1, "swapped", 2) == \
                acquisition_tile(s, 1, "diagonal", 2)

    def test_swapped_deadlocks_at_residency_one(self, small_matrix):
        gpu = GPU(device=TINY_DEVICE, seed=2, max_resident_blocks=1)
        with pytest.raises(DeadlockError):
            SKSSLB1R1W(acquisition="swapped").run(small_matrix, gpu)

    def test_swapped_survives_residency_two_and_up(self, small_matrix):
        """One extra resident block is enough: the look-back always finds a
        peer making progress, so every sampled schedule succeeds."""
        for residency in (2, 3):
            gpu = GPU(device=TINY_DEVICE, seed=2, scheduler_policy="lifo",
                      max_resident_blocks=residency)
            res = SKSSLB1R1W(acquisition="swapped").run(small_matrix, gpu)
            assert np.array_equal(res.sat, sat_reference(small_matrix))
