"""Integration: all seven algorithms produce the reference SAT, simulated and
host paths, across tile widths, devices and scheduling policies."""

import numpy as np
import pytest

from repro.analysis import check_counts, check_result
from repro.gpusim import GPU, TINY_DEVICE
from repro.sat import ALGORITHMS, get_algorithm, sat_reference

ALL_NAMES = sorted(ALGORITHMS)
TILE_NAMES = [n for n in ALL_NAMES if ALGORITHMS[n].tile_based]


@pytest.mark.parametrize("name", ALL_NAMES)
class TestEveryAlgorithm:
    def test_simulated_matches_reference(self, name, small_matrix):
        res = get_algorithm(name).run(small_matrix, GPU(seed=11))
        assert check_result(res, small_matrix)

    def test_host_matches_reference(self, name, small_matrix):
        got = get_algorithm(name).run_host(small_matrix)
        assert np.array_equal(got, sat_reference(small_matrix))

    def test_counts_match_table1(self, name, small_matrix):
        res = get_algorithm(name).run(small_matrix, GPU(seed=11))
        check = check_counts(res)
        assert check.ok, str(check)

    def test_scratch_buffers_freed(self, name, small_matrix):
        gpu = GPU(seed=1)
        get_algorithm(name).run(small_matrix, gpu)
        assert gpu.memory.allocated_bytes == 0

    def test_non_square_supported(self, name, rng):
        a = rng.integers(0, 10, size=(32, 64)).astype(float)
        got = get_algorithm(name).run_host(a)
        assert got.shape == a.shape
        assert np.array_equal(got, sat_reference(a))

    def test_negative_values_supported(self, name, rng):
        a = rng.integers(-50, 50, size=(64, 64)).astype(float)
        res = get_algorithm(name).run(a, GPU(seed=2))
        assert check_result(res, a)


@pytest.mark.parametrize("name", TILE_NAMES)
class TestTileWidths:
    def test_w64(self, name, medium_matrix):
        res = get_algorithm(name, tile_width=64).run(medium_matrix, GPU(seed=3))
        assert check_result(res, medium_matrix)

    def test_w_equals_n(self, name):
        """One tile covering the whole (small) matrix."""
        rng = np.random.default_rng(0)
        a = rng.integers(0, 10, size=(32, 32)).astype(float)
        res = get_algorithm(name, tile_width=32).run(a, GPU(seed=4))
        assert check_result(res, a)

    def test_misaligned_size_supported(self, name, rng):
        """Ragged edges: padded internally, cropped back on output."""
        a = rng.integers(0, 10, size=(48, 48)).astype(float)
        got = get_algorithm(name, tile_width=32).run_host(a)
        assert got.shape == a.shape
        assert np.array_equal(got, sat_reference(a))

    def test_host_path_small_tiles(self, name, rng):
        """Host path supports sub-warp tiles (simulator needs W % 32 == 0)."""
        a = rng.integers(0, 10, size=(24, 24)).astype(float)
        got = get_algorithm(name, tile_width=4).run_host(a)
        assert np.array_equal(got, sat_reference(a))


class TestAlgorithmsAgree:
    def test_all_algorithms_identical_output(self, medium_matrix):
        """All seven produce bit-identical SATs on integer-valued input."""
        outs = [get_algorithm(n).run(medium_matrix, GPU(seed=7)).sat
                for n in ALL_NAMES]
        for other in outs[1:]:
            assert np.array_equal(outs[0], other)

    def test_tiny_device_all_algorithms(self, small_matrix):
        """Everything still works with 2 SMs and 1 block per SM resident."""
        for name in ALL_NAMES:
            gpu = GPU(device=TINY_DEVICE, seed=5, scheduler_policy="lifo",
                      max_resident_blocks=2)
            res = get_algorithm(name).run(small_matrix, gpu)
            assert check_result(res, small_matrix), name
