"""(1+r)R1W: band decomposition, r sweep, traffic scaling."""

import numpy as np
import pytest

from repro.analysis import check_result
from repro.errors import ConfigurationError
from repro.gpusim import GPU
from repro.primitives.tile import TileGrid
from repro.sat.hybrid_1r1w import Hybrid1R1W, band_limits, band_tiles


class TestBands:
    def test_limits_r_zero_is_pure_1r1w(self):
        Ka, Kc = band_limits(0.0, 8)
        assert Ka == 0 and Kc == 2 * 8 - 2

    def test_limits_r_one_has_empty_middle(self):
        Ka, Kc = band_limits(1.0, 8)
        assert Ka == 8 and Kc == 7  # band B is K in [8, 7] = empty

    def test_limits_quarter(self):
        # sqrt(0.25) = 0.5: A is K < t/2, C is K > 1.5t - 1.
        Ka, Kc = band_limits(0.25, 8)
        assert Ka == 4 and Kc == 11

    def test_invalid_r_rejected(self):
        with pytest.raises(ConfigurationError):
            band_limits(1.5, 8)
        with pytest.raises(ConfigurationError):
            band_limits(-0.1, 8)

    def test_bands_partition_all_tiles(self):
        grid = TileGrid(n=256, W=32)
        for r in (0.0, 0.25, 0.5, 1.0):
            Ka, Kc = band_limits(r, grid.tiles_per_side)
            a, b, c = band_tiles(grid, Ka, Kc)
            assert sorted(a + b + c) == sorted(grid.all_tiles())

    def test_band_a_is_downward_closed(self):
        """Every predecessor (left/up) of an A tile is also in A — required
        for the restricted prefix computation."""
        grid = TileGrid(n=256, W=32)
        Ka, Kc = band_limits(0.25, grid.tiles_per_side)
        a_tiles, _, _ = band_tiles(grid, Ka, Kc)
        a_set = set(a_tiles)
        for I, J in a_tiles:
            if I > 0:
                assert (I - 1, J) in a_set
            if J > 0:
                assert (I, J - 1) in a_set


class TestHybridExecution:
    @pytest.mark.parametrize("r", [0.0, 0.1, 0.25, 0.5, 0.75, 1.0])
    def test_correct_for_all_r(self, r, small_matrix):
        res = Hybrid1R1W(r=r).run(small_matrix, GPU(seed=1))
        assert check_result(res, small_matrix), f"r={r}"

    def test_r_zero_matches_1r1w_kernel_count(self, small_matrix):
        t = small_matrix.shape[0] // 32
        res = Hybrid1R1W(r=0.0).run(small_matrix, GPU(seed=1))
        assert res.kernel_calls == 2 * t - 1

    def test_reads_scale_with_r(self, medium_matrix):
        """Global reads grow monotonically toward ~2n² as r -> 1."""
        reads = []
        for r in (0.0, 0.5, 1.0):
            res = Hybrid1R1W(r=r).run(medium_matrix, GPU(seed=2))
            reads.append(res.report.traffic.global_read_requests)
        n2 = medium_matrix.size
        assert reads[0] < reads[1] < reads[2]
        assert reads[0] <= 1.15 * n2
        assert reads[2] >= 1.9 * n2

    def test_writes_stay_1w(self, medium_matrix):
        for r in (0.0, 0.5, 1.0):
            res = Hybrid1R1W(r=r).run(medium_matrix, GPU(seed=3))
            n2 = medium_matrix.size
            assert res.report.traffic.global_write_requests <= 1.15 * n2

    def test_fewer_kernels_than_pure_wavefront(self, medium_matrix):
        pure = Hybrid1R1W(r=0.0).run(medium_matrix, GPU(seed=4)).kernel_calls
        mixed = Hybrid1R1W(r=0.5).run(medium_matrix, GPU(seed=4)).kernel_calls
        # t=4: pure = 7 kernels; r=0.5 replaces several diagonals by 2 bands.
        assert mixed != pure or medium_matrix.shape[0] // 32 <= 2

    def test_r_recorded_in_params(self, small_matrix):
        res = Hybrid1R1W(r=0.3).run(small_matrix, GPU(seed=5))
        assert res.params["r"] == 0.3

    def test_w64(self, medium_matrix):
        res = Hybrid1R1W(r=0.25, tile_width=64).run(medium_matrix, GPU(seed=6))
        assert check_result(res, medium_matrix)

    def test_host_path(self, small_matrix):
        from repro.sat import sat_reference
        assert np.array_equal(Hybrid1R1W(r=0.25).run_host(small_matrix),
                              sat_reference(small_matrix))
