"""OpenCV-style integral images, exclusive SATs, tilted integrals."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.sat import sat_reference
from repro.sat.integral import (exclusive_sat, integral_image, rect_sum_ii,
                                tilted_integral, tilted_integral_bruteforce)


class TestIntegralImage:
    def test_shape_and_padding(self, rng):
        a = rng.integers(0, 9, size=(5, 7))
        ii = integral_image(a)
        assert ii.shape == (6, 8)
        assert (ii[0, :] == 0).all() and (ii[:, 0] == 0).all()
        assert np.array_equal(ii[1:, 1:], sat_reference(a))

    def test_accepts_precomputed_sat(self, rng):
        a = rng.integers(0, 9, size=(4, 4))
        sat = sat_reference(a)
        assert np.array_equal(integral_image(a, sat=sat),
                              integral_image(a))

    def test_exclusive_sat(self, rng):
        a = rng.integers(0, 9, size=(6, 6))
        ex = exclusive_sat(a)
        assert ex.shape == a.shape
        assert ex[0, 0] == 0
        assert ex[3, 4] == a[:3, :4].sum()

    def test_non_2d_rejected(self):
        with pytest.raises(ConfigurationError):
            integral_image(np.zeros(4))
        with pytest.raises(ConfigurationError):
            exclusive_sat(np.zeros(4))

    def test_rect_sum_ii_branch_free_queries(self, rng):
        a = rng.integers(-9, 9, size=(10, 12))
        ii = integral_image(a)
        for (t, l, b, r) in ((0, 0, 9, 11), (3, 4, 3, 4), (0, 5, 7, 11),
                             (2, 0, 9, 3)):
            assert rect_sum_ii(ii, t, l, b, r) == a[t:b + 1, l:r + 1].sum()

    def test_rect_sum_ii_bounds(self, rng):
        ii = integral_image(np.zeros((4, 4)))
        with pytest.raises(ConfigurationError):
            rect_sum_ii(ii, 0, 0, 4, 0)

    @settings(deadline=None, max_examples=25)
    @given(rows=st.integers(1, 12), cols=st.integers(1, 12),
           seed=st.integers(0, 10_000))
    def test_property_query_identity(self, rows, cols, seed):
        rng = np.random.default_rng(seed)
        a = rng.integers(-20, 20, size=(rows, cols))
        ii = integral_image(a)
        t, b = sorted(rng.integers(0, rows, 2).tolist())
        l, r = sorted(rng.integers(0, cols, 2).tolist())
        assert rect_sum_ii(ii, t, l, b, r) == a[t:b + 1, l:r + 1].sum()


class TestTiltedIntegral:
    def test_matches_bruteforce(self, rng):
        for shape in ((1, 1), (3, 5), (6, 6), (8, 3)):
            a = rng.integers(0, 9, size=shape).astype(float)
            assert np.allclose(tilted_integral(a),
                               tilted_integral_bruteforce(a)), shape

    def test_row0_is_zero(self, rng):
        a = rng.random((4, 4))
        assert (tilted_integral(a)[0] == 0).all()

    def test_single_pixel(self):
        a = np.array([[5.0]])
        tilt = tilted_integral(a)
        # The triangle of (1, 0) has apex column 0, reach 0 at y=0: it holds
        # (0, 0).  The triangle of (1, 1) only reaches column 1, which is
        # outside the 1-wide image, so it is empty.
        assert tilt[1, 0] == 5.0 and tilt[1, 1] == 0.0

    def test_full_bottom_row_covers_everything(self, rng):
        """With apex far enough down, the middle-column triangle covers the
        whole image."""
        n = 5
        a = rng.integers(0, 9, size=(n, n)).astype(float)
        wide = tilted_integral_bruteforce(a)
        # Cell (n, j) with j at the centre reaches all columns for the upper
        # rows; verify the definition's brute force agrees with manual sums.
        assert wide[n, n // 2] == sum(
            a[y, max(0, n // 2 - (n - 1 - y)):n // 2 + (n - 1 - y) + 1].sum()
            for y in range(n))

    def test_non_2d_rejected(self):
        with pytest.raises(ConfigurationError):
            tilted_integral(np.zeros(4))

    @settings(deadline=None, max_examples=15)
    @given(rows=st.integers(1, 7), cols=st.integers(1, 7),
           seed=st.integers(0, 10_000))
    def test_property_recurrence_equals_definition(self, rows, cols, seed):
        rng = np.random.default_rng(seed)
        a = rng.integers(-9, 9, size=(rows, cols)).astype(float)
        assert np.allclose(tilted_integral(a), tilted_integral_bruteforce(a))
