"""1R1W (Kasagi): 2n/W - 1 wavefront kernels over tile anti-diagonals."""

import numpy as np
import pytest

from repro.analysis import check_result
from repro.gpusim import GPU
from repro.sat.kasagi_1r1w import Kasagi1R1W


class Test1R1W:
    def test_correct(self, small_matrix):
        assert check_result(Kasagi1R1W().run(small_matrix, GPU(seed=1)),
                            small_matrix)

    def test_kernel_count_is_2t_minus_1(self, small_matrix):
        t = small_matrix.shape[0] // 32
        res = Kasagi1R1W().run(small_matrix, GPU(seed=1))
        assert res.kernel_calls == 2 * t - 1

    def test_wavefront_block_counts(self, small_matrix):
        """Kernel K launches exactly one block per tile on diagonal K —
        the low-parallelism profile Table I calls out."""
        t = small_matrix.shape[0] // 32
        res = Kasagi1R1W().run(small_matrix, GPU(seed=1))
        blocks = [k.grid_blocks for k in res.report.kernels]
        assert blocks == [t - abs(K - (t - 1)) for K in range(2 * t - 1)]

    def test_one_read_one_write(self, medium_matrix):
        res = Kasagi1R1W(tile_width=64).run(medium_matrix, GPU(seed=2))
        n2 = medium_matrix.size
        t = res.report.traffic
        assert n2 <= t.global_read_requests <= 1.15 * n2
        assert n2 <= t.global_write_requests <= 1.15 * n2

    def test_no_spinning(self, small_matrix):
        """Kernel boundaries synchronize: the wavefront never spin-waits."""
        res = Kasagi1R1W().run(small_matrix, GPU(seed=1))
        assert res.report.traffic.spin_iterations == 0

    def test_single_tile_matrix(self, rng):
        a = rng.integers(0, 9, size=(32, 32)).astype(float)
        res = Kasagi1R1W().run(a, GPU(seed=3))
        assert res.kernel_calls == 1
        assert check_result(res, a)

    @pytest.mark.parametrize("policy", ["random", "lifo"])
    def test_policies(self, policy, small_matrix):
        res = Kasagi1R1W().run(small_matrix,
                               GPU(seed=5, scheduler_policy=policy))
        assert check_result(res, small_matrix)

    def test_host_path(self, small_matrix):
        from repro.sat import sat_reference
        assert np.array_equal(Kasagi1R1W().run_host(small_matrix),
                              sat_reference(small_matrix))
