"""2R2W: exact traffic, strided access signature."""

import numpy as np

from repro.analysis import check_result
from repro.gpusim import GPU
from repro.sat.naive_2r2w import Naive2R2W


class Test2R2W:
    def test_correct(self, small_matrix):
        assert check_result(Naive2R2W().run(small_matrix, GPU(seed=1)),
                            small_matrix)

    def test_exactly_two_kernels(self, small_matrix):
        res = Naive2R2W().run(small_matrix, GPU(seed=1))
        assert res.kernel_calls == 2
        assert [k.name for k in res.report.kernels] == \
            ["2r2w_column_scan", "2r2w_row_scan"]

    def test_exact_2n2_traffic(self, small_matrix):
        """2R2W does exactly 2n² reads and 2n² writes — no overhead terms."""
        res = Naive2R2W().run(small_matrix, GPU(seed=1))
        n2 = small_matrix.size
        assert res.report.traffic.global_read_requests == 2 * n2
        assert res.report.traffic.global_write_requests == 2 * n2

    def test_uses_only_n_threads(self, small_matrix):
        res = Naive2R2W().run(small_matrix, GPU(seed=1))
        assert res.max_threads == small_matrix.shape[0]

    def test_row_phase_is_strided(self, small_matrix):
        """The row kernel's accesses are uncoalesced: its transaction count
        per element is several times the column kernel's."""
        res = Naive2R2W().run(small_matrix, GPU(seed=1))
        col_k, row_k = res.report.kernels
        # float64: coalesced = 4 elements per 32-byte sector, strided = 1.
        assert row_k.traffic.global_read_transactions >= \
            4 * col_k.traffic.global_read_transactions

    def test_tiny_matrix(self, rng):
        a = rng.integers(0, 5, size=(32, 32)).astype(float)
        assert check_result(Naive2R2W().run(a, GPU(seed=2)), a)

    def test_host_path(self, small_matrix):
        from repro.sat import sat_reference
        assert np.array_equal(Naive2R2W().run_host(small_matrix),
                              sat_reference(small_matrix))
