"""2R1W (Nehab): three kernels, intermediate sums, 2-read/1-write traffic."""

import numpy as np

from repro.analysis import check_result
from repro.gpusim import GPU
from repro.gpusim.counters import LaunchSummary
from repro.primitives.tile import (TileGrid, global_col_sums, global_row_sums,
                                   global_sum, local_col_sums, local_row_sums,
                                   local_sum)
from repro.sat.nehab_2r1w import Nehab2R1W


class Test2R1W:
    def test_correct(self, small_matrix):
        assert check_result(Nehab2R1W().run(small_matrix, GPU(seed=1)),
                            small_matrix)

    def test_three_kernels_in_order(self, small_matrix):
        res = Nehab2R1W().run(small_matrix, GPU(seed=1))
        assert [k.name for k in res.report.kernels] == \
            ["2r1w_local_sums", "2r1w_global_sums", "2r1w_gsat"]

    def test_kernel1_writes_local_sums(self, small_matrix):
        """After kernel 1 the LRS/LCS/LS arrays hold the Table II values."""
        gpu = GPU(seed=2)
        n = small_matrix.shape[0]
        alg = Nehab2R1W()
        a_buf = gpu.alloc("_sat_a", (n, n), np.float64, fill=small_matrix)
        b_buf = gpu.alloc("_sat_b", (n, n), np.float64)
        alg._run_device(gpu, a_buf, b_buf, TileGrid(n=n, W=32), LaunchSummary())
        grid = TileGrid(n=n, W=32)
        lrs = gpu.read("_sat_s_lrs")
        lcs = gpu.read("_sat_s_lcs")
        ls = gpu.read("_sat_s_ls")
        grs = gpu.read("_sat_s_grs")
        gcs = gpu.read("_sat_s_gcs")
        gs = gpu.read("_sat_s_gs")
        for I in range(grid.tiles_per_side):
            for J in range(grid.tiles_per_side):
                assert np.array_equal(lrs[I, J],
                                      local_row_sums(small_matrix, grid, I, J))
                assert np.array_equal(lcs[I, J],
                                      local_col_sums(small_matrix, grid, I, J))
                assert ls[I, J] == local_sum(small_matrix, grid, I, J)
                assert np.array_equal(grs[I, J],
                                      global_row_sums(small_matrix, grid, I, J))
                assert np.array_equal(gcs[I, J],
                                      global_col_sums(small_matrix, grid, I, J))
                assert gs[I, J] == global_sum(small_matrix, grid, I, J)

    def test_two_reads_one_write(self, medium_matrix):
        res = Nehab2R1W(tile_width=64).run(medium_matrix, GPU(seed=3))
        n2 = medium_matrix.size
        t = res.report.traffic
        assert 2 * n2 <= t.global_read_requests <= 2.2 * n2
        assert n2 <= t.global_write_requests <= 1.2 * n2

    def test_w64(self, medium_matrix):
        res = Nehab2R1W(tile_width=64).run(medium_matrix, GPU(seed=4))
        assert check_result(res, medium_matrix)

    def test_host_phases(self, small_matrix):
        from repro.sat import sat_reference
        assert np.array_equal(Nehab2R1W().run_host(small_matrix),
                              sat_reference(small_matrix))
