"""2R2W-optimal: two coalesced high-parallelism scan kernels."""

import numpy as np
import pytest

from repro.analysis import check_result
from repro.gpusim import GPU
from repro.sat.optimal_2r2w import Optimal2R2W


class Test2R2WOptimal:
    def test_correct(self, small_matrix):
        assert check_result(Optimal2R2W().run(small_matrix, GPU(seed=1)),
                            small_matrix)

    def test_two_kernels(self, small_matrix):
        res = Optimal2R2W().run(small_matrix, GPU(seed=1))
        assert res.kernel_calls == 2

    def test_column_phase_runs_first(self, small_matrix):
        """Figure 2's order: column-wise prefix sums, then row-wise."""
        res = Optimal2R2W().run(small_matrix, GPU(seed=1))
        names = [k.name for k in res.report.kernels]
        assert names == ["2r2w_opt_col_scan", "2r2w_opt_row_scan"]

    def test_no_strided_amplification(self, small_matrix):
        """All accesses coalesced: float64 transactions stay within ~1.4x of
        the 1-per-4-elements floor for both kernels."""
        res = Optimal2R2W().run(small_matrix, GPU(seed=1))
        n2 = small_matrix.size
        for k in res.report.kernels:
            floor = n2 / 4  # read floor per phase
            assert k.traffic.global_read_transactions <= 1.5 * floor

    def test_traffic_about_double_duplication(self, small_matrix):
        """The >= 100 % overhead floor: ~2 reads + 2 writes per element."""
        res = Optimal2R2W().run(small_matrix, GPU(seed=1))
        n2 = small_matrix.size
        t = res.report.traffic
        assert 2 * n2 <= t.global_read_requests <= 2.2 * n2
        assert 2 * n2 <= t.global_write_requests <= 2.2 * n2

    def test_custom_panel_rows(self, medium_matrix):
        res = Optimal2R2W(panel_rows=64).run(medium_matrix, GPU(seed=2))
        assert check_result(res, medium_matrix)

    @pytest.mark.parametrize("policy", ["random", "lifo"])
    def test_adversarial_scheduling(self, policy, small_matrix):
        res = Optimal2R2W().run(small_matrix,
                                GPU(seed=9, scheduler_policy=policy))
        assert check_result(res, small_matrix)

    def test_host_path(self, small_matrix):
        from repro.sat import sat_reference
        assert np.array_equal(Optimal2R2W().run_host(small_matrix),
                              sat_reference(small_matrix))
