"""Out-of-core banded SAT (extension)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.gpusim import GPU
from repro.sat import sat_reference
from repro.sat.outofcore import OutOfCoreSAT, band_bounds, out_of_core_sat


class TestBandBounds:
    def test_even_split(self):
        assert band_bounds(8, 4) == [(0, 4), (4, 8)]

    def test_ragged_split(self):
        assert band_bounds(10, 4) == [(0, 4), (4, 8), (8, 10)]

    def test_single_band(self):
        assert band_bounds(5, 100) == [(0, 5)]

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            band_bounds(8, 0)


class TestOutOfCoreSat:
    def test_matches_reference(self, rng):
        a = rng.integers(0, 9, size=(64, 48)).astype(float)
        for band in (8, 16, 37, 64, 100):
            got = out_of_core_sat(a, band_rows=band)
            assert np.array_equal(got, sat_reference(a)), band

    def test_rectangular_matrix(self, rng):
        from repro.analysis.tolerances import (assert_sat_close,
                                               derived_tolerance)
        a = rng.normal(size=(30, 90))
        got = out_of_core_sat(a, band_rows=7)
        tol = derived_tolerance(None, a.shape, got.dtype,
                                extra_depth=sum(a.shape))
        assert_sat_close(got, sat_reference(a), tol, abs_input=a)

    def test_square_bands_through_algorithm_host(self, rng):
        a = rng.integers(0, 9, size=(128, 64)).astype(float)
        got = out_of_core_sat(a, band_rows=64, algorithm="1R1W-SKSS-LB")
        assert np.array_equal(got, sat_reference(a))

    def test_square_bands_through_simulator(self, rng):
        a = rng.integers(0, 9, size=(128, 64)).astype(float)
        got = out_of_core_sat(a, band_rows=64, algorithm="skss-lb",
                              gpu_factory=lambda: GPU(seed=3))
        assert np.array_equal(got, sat_reference(a))

    def test_non_square_bands_fall_back_to_reference(self, rng):
        a = rng.integers(0, 9, size=(96, 64)).astype(float)
        got = out_of_core_sat(a, band_rows=48, algorithm="skss-lb")
        assert np.array_equal(got, sat_reference(a))

    def test_non_2d_rejected(self):
        with pytest.raises(ConfigurationError):
            out_of_core_sat(np.zeros(8), band_rows=2)

    @settings(deadline=None, max_examples=25)
    @given(rows=st.integers(1, 40), cols=st.integers(1, 40),
           band=st.integers(1, 45), seed=st.integers(0, 10_000))
    def test_property_any_banding(self, rows, cols, band, seed):
        rng = np.random.default_rng(seed)
        a = rng.integers(-9, 9, size=(rows, cols)).astype(float)
        assert np.array_equal(out_of_core_sat(a, band_rows=band),
                              sat_reference(a))


class TestStreaming:
    def test_incremental_assembly(self, rng):
        a = rng.integers(0, 9, size=(40, 24)).astype(float)
        oos = OutOfCoreSAT(n_cols=24)
        for lo, hi in band_bounds(40, 12):
            oos.push_band(a[lo:hi])
        assert np.array_equal(oos.sat(), sat_reference(a))

    def test_queries_during_streaming(self, rng):
        a = rng.integers(0, 9, size=(32, 16)).astype(float)
        oos = OutOfCoreSAT(n_cols=16)
        oos.push_band(a[:16])
        assert oos.rect_sum(2, 3, 10, 12) == a[2:11, 3:13].sum()
        with pytest.raises(ConfigurationError):
            oos.rect_sum(0, 0, 20, 0)  # row 20 not pushed yet
        oos.push_band(a[16:])
        assert oos.rect_sum(5, 0, 25, 15) == a[5:26, :].sum()

    def test_low_memory_mode_band_aligned(self, rng):
        a = rng.integers(0, 9, size=(30, 10)).astype(float)
        oos = OutOfCoreSAT(n_cols=10, keep_sat=False)
        for lo, hi in band_bounds(30, 10):
            oos.push_band(a[lo:hi])
        # Band edges are rows 9, 19, 29: queries aligned to them work.
        assert oos.rect_sum(10, 0, 29, 9) == a[10:, :].sum()
        assert oos.rect_sum(0, 2, 19, 7) == a[:20, 2:8].sum()
        with pytest.raises(ConfigurationError):
            oos.rect_sum(0, 0, 15, 9)   # row 15 is not a retained edge
        with pytest.raises(ConfigurationError):
            oos.sat()

    def test_band_width_checked(self):
        oos = OutOfCoreSAT(n_cols=8)
        with pytest.raises(ConfigurationError):
            oos.push_band(np.zeros((4, 9)))

    def test_invalid_n_cols(self):
        with pytest.raises(ConfigurationError):
            OutOfCoreSAT(n_cols=0)


class TestBandBoundarySpanningQueries:
    """rect_sum rectangles that straddle one or several band boundaries."""

    def _streamed(self, a, band):
        oos = OutOfCoreSAT(n_cols=a.shape[1])
        for lo, hi in band_bounds(a.shape[0], band):
            oos.push_band(a[lo:hi])
        return oos

    def test_query_straddles_single_boundary(self, rng):
        a = rng.integers(0, 9, size=(40, 20)).astype(float)
        oos = self._streamed(a, band=16)  # boundaries after rows 15, 31
        for r0, r1 in ((10, 20), (15, 16), (14, 17), (0, 16)):
            assert oos.rect_sum(r0, 3, r1, 18) == a[r0:r1 + 1, 3:19].sum()

    def test_query_spans_multiple_boundaries(self, rng):
        a = rng.integers(0, 9, size=(50, 12)).astype(float)
        oos = self._streamed(a, band=8)  # six boundaries
        assert oos.rect_sum(2, 0, 47, 11) == a[2:48, :].sum()
        assert oos.rect_sum(7, 1, 41, 10) == a[7:42, 1:11].sum()

    def test_one_row_queries_on_each_side_of_a_boundary(self, rng):
        a = rng.integers(0, 9, size=(32, 8)).astype(float)
        oos = self._streamed(a, band=16)
        assert oos.rect_sum(15, 0, 15, 7) == a[15, :].sum()  # last of band 0
        assert oos.rect_sum(16, 0, 16, 7) == a[16, :].sum()  # first of band 1

    def test_every_band_straddling_query_exact(self, rng):
        """Exhaustive small case: all (r0, r1) pairs across the boundary."""
        a = rng.integers(-9, 9, size=(20, 6)).astype(float)
        oos = self._streamed(a, band=10)
        for r0 in range(10):
            for r1 in range(10, 20):
                assert oos.rect_sum(r0, 0, r1, 5) == a[r0:r1 + 1, :].sum()


class TestFinalShortBand:
    """push_band sequences whose last band is shorter than the rest."""

    def test_short_final_band_streaming_matches_reference(self, rng):
        a = rng.integers(0, 9, size=(37, 14)).astype(float)  # 16+16+5
        oos = OutOfCoreSAT(n_cols=14)
        for lo, hi in band_bounds(37, 16):
            oos.push_band(a[lo:hi])
        assert band_bounds(37, 16)[-1] == (32, 37)
        assert np.array_equal(oos.sat(), sat_reference(a))
        # queries confined to and straddling into the short band
        assert oos.rect_sum(33, 2, 36, 9) == a[33:37, 2:10].sum()
        assert oos.rect_sum(30, 0, 36, 13) == a[30:37, :].sum()

    def test_single_row_final_band(self, rng):
        a = rng.integers(0, 9, size=(9, 5)).astype(float)  # 4+4+1
        oos = OutOfCoreSAT(n_cols=5)
        for lo, hi in band_bounds(9, 4):
            oos.push_band(a[lo:hi])
        assert np.array_equal(oos.sat(), sat_reference(a))
        assert oos.rect_sum(8, 0, 8, 4) == a[8, :].sum()

    def test_short_final_band_low_memory_edges(self, rng):
        """keep_sat=False retains the short band's edge row too."""
        a = rng.integers(0, 9, size=(26, 7)).astype(float)  # 10+10+6
        oos = OutOfCoreSAT(n_cols=7, keep_sat=False)
        for lo, hi in band_bounds(26, 10):
            oos.push_band(a[lo:hi])
        # edges at rows 9, 19, 25: band-aligned queries including the short one
        assert oos.rect_sum(20, 0, 25, 6) == a[20:, :].sum()
        assert oos.rect_sum(10, 1, 25, 5) == a[10:, 1:6].sum()

    def test_empty_band_rejected(self):
        oos = OutOfCoreSAT(n_cols=4)
        with pytest.raises(ConfigurationError):
            oos.push_band(np.zeros((0, 4)))

    def test_out_of_core_helper_short_band_via_algorithm(self, rng):
        """Whole-matrix helper with a ragged final band through the host
        algorithm path (square bands except the last)."""
        a = rng.integers(0, 9, size=(150, 64)).astype(float)  # 64+64+22
        got = out_of_core_sat(a, band_rows=64, algorithm="skss-lb")
        assert np.array_equal(got, sat_reference(a))


class TestPushOrdering:
    """Out-of-order pushes must be rejected, not silently mis-stitched."""

    def test_overlapping_push_rejected(self, rng):
        a = rng.integers(0, 9, size=(24, 8)).astype(float)
        oos = OutOfCoreSAT(n_cols=8)
        oos.push_band(a[:12], row_start=0)
        with pytest.raises(ConfigurationError,
                           match="overlaps rows already pushed"):
            oos.push_band(a[6:18], row_start=6)
        with pytest.raises(ConfigurationError, match="next expected row"):
            oos.push_band(a[:12], row_start=0)  # exact duplicate band

    def test_gap_rejected(self, rng):
        a = rng.integers(0, 9, size=(24, 8)).astype(float)
        oos = OutOfCoreSAT(n_cols=8)
        oos.push_band(a[:8], row_start=0)
        with pytest.raises(ConfigurationError, match=r"rows 8\.\.15"):
            oos.push_band(a[16:], row_start=16)

    def test_rejected_push_leaves_state_intact(self, rng):
        """A refused band must not advance the carry: the correct band can
        still be pushed afterwards and the assembly stays exact."""
        a = rng.integers(0, 9, size=(20, 6)).astype(float)
        oos = OutOfCoreSAT(n_cols=6)
        oos.push_band(a[:10], row_start=0)
        with pytest.raises(ConfigurationError):
            oos.push_band(a[5:15], row_start=5)
        oos.push_band(a[10:], row_start=10)
        assert np.array_equal(oos.sat(), sat_reference(a))

    def test_correct_row_start_accepted(self, rng):
        a = rng.integers(0, 9, size=(30, 5)).astype(float)
        oos = OutOfCoreSAT(n_cols=5)
        for lo, hi in band_bounds(30, 7):
            oos.push_band(a[lo:hi], row_start=lo)
        assert np.array_equal(oos.sat(), sat_reference(a))

    def test_rect_sum_error_messages_distinguish_causes(self, rng):
        a = rng.integers(0, 9, size=(10, 6)).astype(float)
        oos = OutOfCoreSAT(n_cols=6)
        oos.push_band(a[:5])
        with pytest.raises(ConfigurationError, match="invalid rectangle"):
            oos.rect_sum(3, 0, 1, 2)            # malformed corners
        with pytest.raises(ConfigurationError,
                           match="has not been pushed yet"):
            oos.rect_sum(0, 0, 7, 2)            # well-formed, too early
