"""CPU-parallel host SAT (fork/join band decomposition)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.sat import sat_reference
from repro.sat.parallel_host import ParallelSATEngine, parallel_sat


class TestParallelSat:
    @pytest.mark.parametrize("workers", [1, 2, 3, 8])
    def test_matches_reference(self, workers, rng):
        a = rng.integers(-9, 9, size=(97, 61)).astype(float)
        assert np.array_equal(parallel_sat(a, workers=workers),
                              sat_reference(a))

    def test_input_not_mutated(self, rng):
        a = rng.random((16, 16))
        before = a.copy()
        parallel_sat(a, workers=2)
        assert np.array_equal(a, before)

    def test_default_workers(self, rng):
        a = rng.integers(0, 9, size=(40, 40)).astype(float)
        assert np.array_equal(parallel_sat(a), sat_reference(a))

    def test_tiny_matrices(self):
        for shape in ((1, 1), (1, 7), (5, 1), (2, 2)):
            a = np.arange(np.prod(shape), dtype=float).reshape(shape)
            assert np.array_equal(parallel_sat(a, workers=4),
                                  sat_reference(a))

    def test_more_workers_than_rows(self, rng):
        a = rng.integers(0, 9, size=(3, 50)).astype(float)
        assert np.array_equal(parallel_sat(a, workers=8), sat_reference(a))

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            parallel_sat(np.zeros(4))
        with pytest.raises(ConfigurationError):
            parallel_sat(np.zeros((4, 4)), workers=0)

    @settings(deadline=None, max_examples=25)
    @given(rows=st.integers(1, 60), cols=st.integers(1, 60),
           workers=st.integers(1, 6), seed=st.integers(0, 10_000))
    def test_property_any_shape_and_pool(self, rows, cols, workers, seed):
        rng = np.random.default_rng(seed)
        a = rng.integers(-20, 20, size=(rows, cols)).astype(float)
        assert np.array_equal(parallel_sat(a, workers=workers),
                              sat_reference(a))


class TestEngine:
    def test_reusable(self, rng):
        with ParallelSATEngine(workers=3) as engine:
            for _ in range(3):
                a = rng.integers(0, 9, size=(48, 32)).astype(float)
                assert np.array_equal(engine.compute(a), sat_reference(a))

    def test_shape_change_reallocates(self, rng):
        # Integer-valued data: band-wise summation order must still be exact.
        with ParallelSATEngine(workers=2) as engine:
            a = rng.integers(-9, 9, size=(20, 30)).astype(float)
            b = rng.integers(-9, 9, size=(30, 20)).astype(float)
            assert np.array_equal(engine.compute(a), sat_reference(a))
            assert np.array_equal(engine.compute(b), sat_reference(b))

    def test_result_survives_next_compute(self, rng):
        """Returned arrays must not alias the engine's scratch."""
        with ParallelSATEngine(workers=2) as engine:
            a = rng.integers(0, 9, size=(16, 16)).astype(float)
            b = rng.integers(0, 9, size=(16, 16)).astype(float)
            ra = engine.compute(a)
            engine.compute(b)
            assert np.array_equal(ra, sat_reference(a))

    def test_invalid_workers(self):
        with pytest.raises(ConfigurationError):
            ParallelSATEngine(workers=0)

    def test_close_idempotent(self):
        engine = ParallelSATEngine(workers=1)
        engine.close()
        engine.close()
