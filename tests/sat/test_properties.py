"""Algebraic properties of the SAT, property-tested across algorithms.

The SAT operator is linear, commutes with transposition, is monotone on
non-negative inputs, and inverts through second differences.  Each property
is verified both for the reference and through the algorithms' host paths
(exercising the tile dataflow on arbitrary shapes)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sat import get_algorithm, sat_reference

HOST_ALGOS = ["2R1W", "1R1W", "1R1W-SKSS", "1R1W-SKSS-LB"]


def host_sat(name: str, a: np.ndarray, W: int) -> np.ndarray:
    return get_algorithm(name, tile_width=W).run_host(a)


def square(rng, t, W, lo=-9, hi=9):
    n = t * W
    return rng.integers(lo, hi, size=(n, n)).astype(np.float64)


@settings(deadline=None, max_examples=20)
@given(t=st.integers(1, 3), W=st.sampled_from([2, 4, 8]),
       seed=st.integers(0, 10_000),
       name=st.sampled_from(HOST_ALGOS))
def test_linearity(t, W, seed, name):
    """SAT(αa + βb) = α·SAT(a) + β·SAT(b)."""
    rng = np.random.default_rng(seed)
    a, b = square(rng, t, W), square(rng, t, W)
    alpha, beta = 3.0, -2.0
    lhs = host_sat(name, alpha * a + beta * b, W)
    rhs = alpha * host_sat(name, a, W) + beta * host_sat(name, b, W)
    assert np.array_equal(lhs, rhs)


@settings(deadline=None, max_examples=20)
@given(t=st.integers(1, 3), W=st.sampled_from([2, 4, 8]),
       seed=st.integers(0, 10_000),
       name=st.sampled_from(HOST_ALGOS))
def test_transpose_commutes(t, W, seed, name):
    """SAT(aᵀ) = SAT(a)ᵀ."""
    rng = np.random.default_rng(seed)
    a = square(rng, t, W)
    assert np.array_equal(host_sat(name, a.T.copy(), W),
                          host_sat(name, a, W).T)


@settings(deadline=None, max_examples=20)
@given(t=st.integers(1, 3), W=st.sampled_from([2, 4, 8]),
       seed=st.integers(0, 10_000))
def test_monotone_on_nonnegative(t, W, seed):
    """Non-negative input ⇒ SAT non-decreasing along rows and columns."""
    rng = np.random.default_rng(seed)
    a = square(rng, t, W, lo=0, hi=9)
    sat = host_sat("1R1W-SKSS-LB", a, W)
    assert (np.diff(sat, axis=0) >= 0).all()
    assert (np.diff(sat, axis=1) >= 0).all()


@settings(deadline=None, max_examples=20)
@given(t=st.integers(1, 3), W=st.sampled_from([2, 4, 8]),
       seed=st.integers(0, 10_000),
       name=st.sampled_from(HOST_ALGOS))
def test_second_difference_inverts(t, W, seed, name):
    """a[i][j] = b[i][j] − b[i-1][j] − b[i][j-1] + b[i-1][j-1]."""
    rng = np.random.default_rng(seed)
    a = square(rng, t, W)
    b = host_sat(name, a, W)
    padded = np.zeros((a.shape[0] + 1, a.shape[1] + 1))
    padded[1:, 1:] = b
    recovered = padded[1:, 1:] - padded[:-1, 1:] - padded[1:, :-1] \
        + padded[:-1, :-1]
    assert np.array_equal(recovered, a)


@settings(deadline=None, max_examples=15)
@given(t=st.integers(1, 3), W=st.sampled_from([2, 4, 8]),
       seed=st.integers(0, 10_000))
def test_all_host_paths_agree(t, W, seed):
    """Every algorithm's host dataflow produces the identical SAT."""
    rng = np.random.default_rng(seed)
    a = square(rng, t, W)
    ref = sat_reference(a)
    for name in HOST_ALGOS + ["2R2W", "2R2W-optimal", "(1+r)R1W"]:
        assert np.array_equal(host_sat(name, a, W), ref), name


@settings(deadline=None, max_examples=15)
@given(seed=st.integers(0, 10_000))
def test_constant_matrix_closed_form(seed):
    """SAT of a constant c matrix is c·(i+1)·(j+1)."""
    rng = np.random.default_rng(seed)
    c = float(rng.integers(-5, 6))
    n = int(rng.integers(1, 20))
    a = np.full((n, n), c)
    ii, jj = np.meshgrid(np.arange(1, n + 1), np.arange(1, n + 1),
                         indexing="ij")
    assert np.allclose(sat_reference(a), c * ii * jj)


@settings(deadline=None, max_examples=15)
@given(seed=st.integers(0, 10_000), n=st.integers(1, 16))
def test_single_impulse(seed, n):
    """SAT of a unit impulse at (p, q) is the indicator of i>=p and j>=q."""
    rng = np.random.default_rng(seed)
    p, q = rng.integers(0, n, size=2)
    a = np.zeros((n, n))
    a[p, q] = 1.0
    sat = sat_reference(a)
    ii, jj = np.meshgrid(np.arange(n), np.arange(n), indexing="ij")
    assert np.array_equal(sat, ((ii >= p) & (jj >= q)).astype(float))
