"""Reference SAT and rectangle queries, including the paper's Figure 2."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.errors import ConfigurationError
from repro.sat.reference import (rect_sum, rect_sums, sat_reference,
                                 sat_sequential)

#: The 9x9 input matrix of the paper's Figure 2.
FIGURE2_INPUT = np.array([
    [0, 0, 0, 1, 1, 1, 0, 0, 0],
    [0, 0, 1, 1, 1, 1, 1, 0, 0],
    [0, 1, 1, 1, 2, 1, 1, 1, 0],
    [1, 1, 1, 2, 2, 2, 1, 1, 1],
    [1, 1, 2, 2, 3, 2, 2, 1, 1],
    [1, 1, 1, 2, 2, 2, 1, 1, 1],
    [0, 1, 1, 1, 2, 1, 1, 1, 0],
    [0, 0, 1, 1, 1, 1, 1, 0, 0],
    [0, 0, 0, 1, 1, 1, 0, 0, 0],
], dtype=np.int64)

#: Figure 2's middle matrix: the column-wise prefix sums.
FIGURE2_COLUMN_PREFIX = np.array([
    [0, 0, 0, 1, 1, 1, 0, 0, 0],
    [0, 0, 1, 2, 2, 2, 1, 0, 0],
    [0, 1, 2, 3, 4, 3, 2, 1, 0],
    [1, 2, 3, 5, 6, 5, 3, 2, 1],
    [2, 3, 5, 7, 9, 7, 5, 3, 2],
    [3, 4, 6, 9, 11, 9, 6, 4, 3],
    [3, 5, 7, 10, 13, 10, 7, 5, 3],
    [3, 5, 8, 11, 14, 11, 8, 5, 3],
    [3, 5, 8, 12, 15, 12, 8, 5, 3],
], dtype=np.int64)

#: Figure 2's right matrix: the summed area table.
FIGURE2_SAT = np.array([
    [0, 0, 0, 1, 2, 3, 3, 3, 3],
    [0, 0, 1, 3, 5, 7, 8, 8, 8],
    [0, 1, 3, 6, 10, 13, 15, 16, 16],
    [1, 3, 6, 11, 17, 22, 25, 27, 28],
    [2, 5, 10, 17, 26, 33, 38, 41, 43],
    [3, 7, 13, 22, 33, 42, 48, 52, 55],
    [3, 8, 15, 25, 38, 48, 55, 60, 63],
    [3, 8, 16, 27, 41, 52, 60, 65, 68],
    [3, 8, 16, 28, 43, 55, 63, 68, 71],
], dtype=np.int64)


class TestFigure2:
    def test_column_prefix_stage(self):
        assert np.array_equal(FIGURE2_INPUT.cumsum(axis=0),
                              FIGURE2_COLUMN_PREFIX)

    def test_paper_figure2_matrix(self):
        assert np.array_equal(sat_reference(FIGURE2_INPUT), FIGURE2_SAT)

    def test_sequential_oracle_agrees(self):
        assert np.array_equal(sat_sequential(FIGURE2_INPUT), FIGURE2_SAT)

    def test_total_sum_corner(self):
        assert FIGURE2_SAT[-1, -1] == FIGURE2_INPUT.sum() == 71


class TestSatReference:
    def test_rejects_non_2d(self):
        with pytest.raises(ConfigurationError):
            sat_reference(np.zeros(5))
        with pytest.raises(ConfigurationError):
            sat_sequential(np.zeros((2, 2, 2)))

    def test_rectangular_input_allowed(self):
        a = np.arange(12).reshape(3, 4)
        assert np.array_equal(sat_reference(a), a.cumsum(0).cumsum(1))

    def test_single_element(self):
        assert sat_reference(np.array([[5]]))[0, 0] == 5

    def test_preserves_integer_dtype(self):
        assert sat_reference(np.ones((3, 3), dtype=np.int64)).dtype == np.int64

    @settings(deadline=None, max_examples=25)
    @given(hnp.arrays(np.int64, hnp.array_shapes(min_dims=2, max_dims=2,
                                                 min_side=1, max_side=12),
                      elements=st.integers(-100, 100)))
    def test_matches_sequential_recurrence(self, a):
        assert np.array_equal(sat_reference(a), sat_sequential(a))


class TestRectSum:
    @pytest.fixture
    def sat(self):
        return sat_reference(FIGURE2_INPUT)

    def test_full_matrix(self, sat):
        assert rect_sum(sat, 0, 0, 8, 8) == 71

    def test_single_cell(self, sat):
        assert rect_sum(sat, 4, 4, 4, 4) == FIGURE2_INPUT[4, 4] == 3

    def test_interior_rectangle(self, sat):
        assert rect_sum(sat, 2, 3, 5, 6) == FIGURE2_INPUT[2:6, 3:7].sum()

    def test_touching_edges(self, sat):
        assert rect_sum(sat, 0, 0, 3, 2) == FIGURE2_INPUT[:4, :3].sum()
        assert rect_sum(sat, 5, 6, 8, 8) == FIGURE2_INPUT[5:, 6:].sum()

    def test_invalid_bounds(self, sat):
        with pytest.raises(ConfigurationError):
            rect_sum(sat, 5, 0, 4, 0)   # top > bottom
        with pytest.raises(ConfigurationError):
            rect_sum(sat, 0, 0, 9, 0)   # bottom out of range

    def test_vectorised_matches_scalar(self, sat, rng):
        tops = rng.integers(0, 9, 50)
        lefts = rng.integers(0, 9, 50)
        bottoms = np.minimum(8, tops + rng.integers(0, 9, 50))
        rights = np.minimum(8, lefts + rng.integers(0, 9, 50))
        got = rect_sums(sat, tops, lefts, bottoms, rights)
        for k in range(50):
            assert got[k] == rect_sum(sat, tops[k], lefts[k], bottoms[k],
                                      rights[k])

    def test_vectorised_bounds_checked(self, sat):
        with pytest.raises(ConfigurationError):
            rect_sums(sat, [0], [0], [9], [0])

    @settings(deadline=None, max_examples=30)
    @given(seed=st.integers(0, 2**31 - 1), n=st.integers(1, 16))
    def test_property_four_corner_identity(self, seed, n):
        """The paper's Section I claim: any rectangle sum from 4 SAT entries."""
        rng = np.random.default_rng(seed)
        a = rng.integers(-50, 50, size=(n, n))
        sat = sat_reference(a)
        top, bottom = sorted(rng.integers(0, n, 2).tolist())
        left, right = sorted(rng.integers(0, n, 2).tolist())
        assert rect_sum(sat, top, left, bottom, right) == \
            a[top:bottom + 1, left:right + 1].sum()
