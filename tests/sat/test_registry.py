"""Registry, aliases and the compute_sat convenience API."""

import numpy as np
import pytest

from repro import ALGORITHMS, compute_sat, get_algorithm, sat_reference
from repro.errors import ConfigurationError
from repro.gpusim import GPU


class TestRegistry:
    def test_seven_algorithms(self):
        assert len(ALGORITHMS) == 7

    def test_canonical_names(self):
        assert set(ALGORITHMS) == {"2R2W", "2R2W-optimal", "2R1W", "1R1W",
                                   "(1+r)R1W", "1R1W-SKSS", "1R1W-SKSS-LB"}

    @pytest.mark.parametrize("alias,canonical", [
        ("skss-lb", "1R1W-SKSS-LB"),
        ("SKSS-LB", "1R1W-SKSS-LB"),
        ("1r1w-skss-lb", "1R1W-SKSS-LB"),
        ("naive", "2R2W"),
        ("nehab", "2R1W"),
        ("kasagi", "1R1W"),
        ("hybrid", "(1+r)R1W"),
        ("(1+r)R1W", "(1+r)R1W"),
        ("2R2W-optimal", "2R2W-optimal"),
    ])
    def test_aliases(self, alias, canonical):
        assert get_algorithm(alias).name == canonical

    def test_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            get_algorithm("3R3W")

    def test_params_forwarded(self):
        alg = get_algorithm("hybrid", r=0.4, tile_width=64)
        assert alg.r == 0.4
        assert alg.tile_width == 64


class TestComputeSat:
    def test_default_is_the_papers_algorithm(self, small_matrix):
        res = compute_sat(small_matrix, gpu=GPU(seed=1))
        assert res.algorithm == "1R1W-SKSS-LB"
        assert np.array_equal(res.sat, sat_reference(small_matrix))

    def test_host_path(self, small_matrix):
        res = compute_sat(small_matrix, simulate=False)
        assert res.report is None
        assert np.array_equal(res.sat, sat_reference(small_matrix))

    def test_host_result_properties_raise(self, small_matrix):
        res = compute_sat(small_matrix, simulate=False)
        with pytest.raises(ConfigurationError):
            _ = res.kernel_calls
        with pytest.raises(ConfigurationError):
            _ = res.max_threads

    def test_summary_strings(self, small_matrix):
        sim = compute_sat(small_matrix, gpu=GPU(seed=1))
        host = compute_sat(small_matrix, simulate=False)
        assert "kernels=1" in sim.summary()
        assert "host path" in host.summary()

    def test_algorithm_selection(self, small_matrix):
        res = compute_sat(small_matrix, algorithm="2r1w", gpu=GPU(seed=1))
        assert res.algorithm == "2R1W"
        assert res.kernel_calls == 3

    def test_tile_width_forwarded(self, medium_matrix):
        res = compute_sat(medium_matrix, tile_width=64, simulate=False)
        assert res.params["tile_width"] == 64
