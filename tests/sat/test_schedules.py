"""Schedule-robustness properties: the single-kernel algorithms must be
correct under *every* interleaving, residency bound and consistency mode.

These are the reproduction's core concurrency guarantees — hypothesis drives
the scheduler seed, policy and residency, and the SAT must always match the
reference bit-for-bit on integer data."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.gpusim import GPU, TINY_DEVICE
from repro.sat import SKSS1R1W, SKSSLB1R1W, sat_reference

MATRIX = np.arange(96 * 96, dtype=np.float64).reshape(96, 96) % 17
EXPECTED = sat_reference(MATRIX)


@settings(deadline=None, max_examples=20,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 2**31 - 1),
       policy=st.sampled_from(["round_robin", "random", "lifo"]),
       residency=st.integers(1, 6))
def test_skss_lb_correct_under_any_schedule(seed, policy, residency):
    gpu = GPU(device=TINY_DEVICE, scheduler_policy=policy, seed=seed,
              max_resident_blocks=residency)
    res = SKSSLB1R1W().run(MATRIX, gpu)
    assert np.array_equal(res.sat, EXPECTED)


@settings(deadline=None, max_examples=12,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 2**31 - 1),
       policy=st.sampled_from(["round_robin", "random", "lifo"]),
       residency=st.integers(1, 4))
def test_skss_correct_under_any_schedule(seed, policy, residency):
    gpu = GPU(device=TINY_DEVICE, scheduler_policy=policy, seed=seed,
              max_resident_blocks=residency)
    res = SKSS1R1W().run(MATRIX, gpu)
    assert np.array_equal(res.sat, EXPECTED)


@settings(deadline=None, max_examples=10,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 2**31 - 1),
       n_tiles=st.integers(1, 4),
       values=st.integers(0, 2**31 - 1))
def test_skss_lb_random_matrices_and_schedules(seed, n_tiles, values):
    """Joint randomness over input data and schedule."""
    rng = np.random.default_rng(values)
    a = rng.integers(-9, 9, size=(32 * n_tiles, 32 * n_tiles)).astype(float)
    gpu = GPU(scheduler_policy="random", seed=seed)
    res = SKSSLB1R1W().run(a, gpu)
    assert np.array_equal(res.sat, sat_reference(a))


@pytest.mark.parametrize("consistency", ["strong", "relaxed"])
@pytest.mark.parametrize("policy", ["round_robin", "random", "lifo"])
def test_skss_lb_consistency_policy_grid(consistency, policy):
    gpu = GPU(device=TINY_DEVICE, scheduler_policy=policy, seed=99,
              consistency=consistency, max_resident_blocks=2)
    res = SKSSLB1R1W().run(MATRIX, gpu)
    assert np.array_equal(res.sat, EXPECTED)


def test_skss_lb_never_deadlocks_at_minimum_residency():
    """Residency 1 forces full serialization through the atomic counter —
    the acid test of the diagonal-major acquisition order."""
    for seed in range(5):
        gpu = GPU(device=TINY_DEVICE, scheduler_policy="lifo", seed=seed,
                  max_resident_blocks=1)
        res = SKSSLB1R1W().run(MATRIX, gpu)
        assert np.array_equal(res.sat, EXPECTED)
