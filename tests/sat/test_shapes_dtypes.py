"""Cross-cutting shape x dtype x engine matrix for every algorithm.

The generalized stack must produce the reference SAT for any rectangle
(including sizes that are not multiples of the tile width) and any supported
input dtype, on both host execution paths.  Integer inputs must accumulate
*exactly* (int64 accumulator per the exact policy), and the wavefront engine
must be bit-identical to the serial host path in the same accumulator dtype.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.hostexec import WavefrontEngine
from repro.sat import resolve_policy, sat_reference
from repro.sat.registry import ALGORITHMS, get_algorithm

#: square / wide / tall / non-multiple-of-W (W = 32 throughout).
SHAPES = [(64, 64), (32, 96), (96, 32), (70, 45)]
DTYPES = [np.uint8, np.int32, np.float32, np.float64]
ENGINES = ["serial", "wavefront"]


def run_host(name, a, engine):
    alg = get_algorithm(name)
    if engine == "wavefront" and not alg.tile_based:
        pytest.skip(f"{name} has no tile dataflow (wavefront engine is for "
                    "tile-based algorithms)")
    return alg.run_host(a, engine=None if engine == "serial" else engine)


def make_input(shape, dtype, seed=0):
    """Integer-valued data in every dtype: keeps float sums exactly
    representable (all values < 2**24 here), so results are comparable
    bit-for-bit even in float32."""
    rng = np.random.default_rng(seed)
    if np.issubdtype(np.dtype(dtype), np.integer):
        return rng.integers(0, 8, size=shape, dtype=dtype)
    return rng.integers(0, 8, size=shape).astype(dtype)


def expected_sat(a):
    acc = resolve_policy(None).accumulator(a.dtype)
    return sat_reference(a.astype(acc, copy=False))


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("dtype", DTYPES, ids=lambda d: np.dtype(d).name)
@pytest.mark.parametrize("shape", SHAPES, ids=lambda s: f"{s[0]}x{s[1]}")
@pytest.mark.parametrize("name", sorted(ALGORITHMS))
class TestShapeDtypeMatrix:
    def test_matches_reference(self, name, shape, dtype, engine):
        a = make_input(shape, dtype, seed=hash((shape, np.dtype(dtype).name))
                       % 2**31)
        want = expected_sat(a)
        got = run_host(name, a, engine)
        assert got.shape == a.shape
        assert got.dtype == want.dtype
        assert np.array_equal(got, want)


@pytest.mark.parametrize("dtype", DTYPES, ids=lambda d: np.dtype(d).name)
@pytest.mark.parametrize("shape", SHAPES, ids=lambda s: f"{s[0]}x{s[1]}")
def test_wavefront_bit_identical_to_serial(shape, dtype):
    """Same accumulator dtype -> the wavefront schedule must not change a
    single bit relative to the serial sweep, and re-runs must agree."""
    a = make_input(shape, dtype, seed=7)
    alg = get_algorithm("1R1W-SKSS-LB")
    serial = alg.run_host(a)
    with WavefrontEngine(workers=4) as eng:
        wf1 = alg.run_host(a, engine=eng)
        wf2 = alg.run_host(a, engine=eng)
    assert serial.dtype == wf1.dtype
    assert np.array_equal(serial, wf1)
    assert np.array_equal(wf1, wf2)


class TestIntegerExactness:
    def test_uint8_accumulates_in_int64(self):
        a = np.full((40, 70), 255, dtype=np.uint8)
        got = get_algorithm("2R2W").run_host(a)
        assert got.dtype == np.int64
        assert got[-1, -1] == 255 * 40 * 70

    def test_large_int32_sums_do_not_wrap(self):
        a = np.full((64, 96), 2**30, dtype=np.int64)
        got = get_algorithm("1R1W-SKSS").run_host(a)
        assert got[-1, -1] == 2**30 * 64 * 96  # far beyond int32 range

    def test_fixed_policy_overrides_accumulator(self):
        a = make_input((40, 40), np.uint8)
        got = get_algorithm("2R1W").run_host(a, dtype_policy=np.float64)
        assert got.dtype == np.float64
        assert np.array_equal(got, expected_sat(a).astype(np.float64))


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("name", sorted(ALGORITHMS))
class TestAcceptanceShapes:
    """The issue's acceptance matrix: camera-style rectangles, both engines."""

    def test_1000x1536_uint8_exact(self, name, engine, wide_uint8):
        a, want = wide_uint8
        got = run_host(name, a, engine)
        assert got.dtype == np.int64
        assert np.array_equal(got, want)

    def test_640x480_float32(self, name, engine, vga_float32):
        a, want = vga_float32
        got = run_host(name, a, engine)
        assert got.dtype == np.float32
        assert np.array_equal(got, want)


@pytest.fixture(scope="module")
def wide_uint8():
    a = make_input((1000, 1536), np.uint8, seed=11)
    return a, expected_sat(a)


@pytest.fixture(scope="module")
def vga_float32():
    # Small values keep every partial sum under 2**24, so the float32
    # reference is bit-exact regardless of summation order.
    a = make_input((640, 480), np.float32, seed=12)
    return a, expected_sat(a)
