"""1R1W-SKSS: column-per-block soft synchronization."""

import numpy as np
import pytest

from repro.analysis import check_result
from repro.gpusim import GPU, TINY_DEVICE
from repro.sat.skss import SKSS1R1W


class TestSKSS:
    def test_correct(self, small_matrix):
        assert check_result(SKSS1R1W().run(small_matrix, GPU(seed=1)),
                            small_matrix)

    def test_single_kernel_t_blocks(self, small_matrix):
        t = small_matrix.shape[0] // 32
        res = SKSS1R1W().run(small_matrix, GPU(seed=1))
        assert res.kernel_calls == 1
        assert res.report.kernels[0].grid_blocks == t

    def test_medium_parallelism(self, small_matrix):
        """Table I: max threads nW/m — one block per tile *column*."""
        t = small_matrix.shape[0] // 32
        res = SKSS1R1W().run(small_matrix, GPU(seed=1))
        assert res.max_threads == t * min(1024, 32 * 32)

    def test_gcp_carried_in_registers(self, small_matrix):
        """The block never reads GCP from global memory: reads stay within
        tile loads + GRS vectors (no extra n²/W column traffic)."""
        res = SKSS1R1W().run(small_matrix, GPU(seed=1))
        n2 = small_matrix.size
        t = small_matrix.shape[0] // 32
        vec = t * t * 32
        # tile loads + GRS(I, J-1) reads (t(t-1) vectors) + flag polls.
        assert res.report.traffic.global_read_requests <= n2 + vec + 2000

    def test_waits_on_left_column(self, small_matrix):
        """With a single resident block columns serialize; with several the
        right columns spin until the left publishes."""
        res = SKSS1R1W().run(small_matrix,
                             GPU(device=TINY_DEVICE, seed=2,
                                 max_resident_blocks=2,
                                 scheduler_policy="lifo"))
        assert check_result(res, small_matrix)

    def test_single_column_matrix(self, rng):
        a = rng.integers(0, 9, size=(64, 64)).astype(float)
        res = SKSS1R1W(tile_width=64).run(a, GPU(seed=3))
        assert res.report.kernels[0].grid_blocks == 1
        assert check_result(res, a)

    @pytest.mark.parametrize("seed", range(4))
    def test_random_schedules(self, seed, small_matrix):
        res = SKSS1R1W().run(small_matrix,
                             GPU(seed=seed, scheduler_policy="random"))
        assert check_result(res, small_matrix)

    def test_host_path(self, small_matrix):
        from repro.sat import sat_reference
        assert np.array_equal(SKSS1R1W().run_host(small_matrix),
                              sat_reference(small_matrix))
