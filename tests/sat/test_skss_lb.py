"""1R1W-SKSS-LB: the paper's algorithm — Figure 9 numbering, status protocol,
look-back behaviour, robustness."""

import numpy as np
import pytest

from repro.analysis import check_result
from repro.gpusim import GPU, TINY_DEVICE
from repro.sat import sat_reference
from repro.sat.skss_lb import SKSSLB1R1W, serial_to_tile, tile_serial_number

#: Figure 9: serial numbers for a 5x5 tile grid.
FIGURE9 = np.array([
    [0, 1, 3, 6, 10],
    [2, 4, 7, 11, 15],
    [5, 8, 12, 16, 19],
    [9, 13, 17, 20, 22],
    [14, 18, 21, 23, 24],
])


class TestFigure9:
    def test_figure9_serial_numbers(self):
        got = np.array([[tile_serial_number(I, J, 5) for J in range(5)]
                        for I in range(5)])
        assert np.array_equal(got, FIGURE9)

    def test_paper_closed_form_on_upper_triangle(self):
        """Above the main anti-diagonal the paper's formula
        (I+J)(I+J+1)/2 + I holds exactly."""
        t = 7
        for I in range(t):
            for J in range(t):
                if I + J <= t - 1:
                    K = I + J
                    assert tile_serial_number(I, J, t) == K * (K + 1) // 2 + I

    @pytest.mark.parametrize("t", [1, 2, 3, 5, 8])
    def test_serials_are_a_bijection(self, t):
        serials = {tile_serial_number(I, J, t)
                   for I in range(t) for J in range(t)}
        assert serials == set(range(t * t))

    @pytest.mark.parametrize("t", [2, 4, 6])
    def test_inverse(self, t):
        for s in range(t * t):
            I, J = serial_to_tile(s, t)
            assert tile_serial_number(I, J, t) == s

    @pytest.mark.parametrize("t", [2, 5, 8])
    def test_dependencies_point_to_smaller_serials(self, t):
        """The deadlock-freedom invariant: every tile a block may wait on
        (left, above, and the whole diagonal chain) has a smaller serial."""
        for I in range(t):
            for J in range(t):
                s = tile_serial_number(I, J, t)
                if J > 0:
                    assert tile_serial_number(I, J - 1, t) < s
                if I > 0:
                    assert tile_serial_number(I - 1, J, t) < s
                if I > 0 and J > 0:
                    assert tile_serial_number(I - 1, J - 1, t) < s

    def test_out_of_range_rejected(self):
        from repro.errors import ConfigurationError
        with pytest.raises(ConfigurationError):
            tile_serial_number(5, 0, 5)
        with pytest.raises(ConfigurationError):
            serial_to_tile(25, 5)


class TestExecution:
    def test_status_bytes_reach_final_values(self, small_matrix):
        """After the kernel, every tile must have R = 4 and C = 2."""
        gpu = GPU(seed=1)
        alg = SKSSLB1R1W()
        n = small_matrix.shape[0]
        a_buf = gpu.alloc("_sat_a", (n, n), np.float64, fill=small_matrix)
        b_buf = gpu.alloc("_sat_b", (n, n), np.float64)
        from repro.gpusim.counters import LaunchSummary
        from repro.primitives.tile import TileGrid
        alg._run_device(gpu, a_buf, b_buf, TileGrid(n=n, W=32), LaunchSummary())
        assert (gpu.read("_sat_s_R") == 4).all()
        assert (gpu.read("_sat_s_C") == 2).all()

    def test_published_aggregates_are_correct(self, small_matrix):
        """GRS/GCS/GS scratch arrays must hold the Table II values."""
        from repro.gpusim.counters import LaunchSummary
        from repro.primitives.tile import (TileGrid, global_col_sums,
                                           global_row_sums, global_sum)
        gpu = GPU(seed=2)
        n = small_matrix.shape[0]
        alg = SKSSLB1R1W()
        a_buf = gpu.alloc("_sat_a", (n, n), np.float64, fill=small_matrix)
        b_buf = gpu.alloc("_sat_b", (n, n), np.float64)
        alg._run_device(gpu, a_buf, b_buf, TileGrid(n=n, W=32), LaunchSummary())
        grid = TileGrid(n=n, W=32)
        t = grid.tiles_per_side
        grs = gpu.read("_sat_s_grs")
        gcs = gpu.read("_sat_s_gcs")
        gs = gpu.read("_sat_s_gs")
        for I in range(t):
            for J in range(t):
                assert np.array_equal(
                    grs[I, J], global_row_sums(small_matrix, grid, I, J))
                assert np.array_equal(
                    gcs[I, J], global_col_sums(small_matrix, grid, I, J))
                assert gs[I, J] == global_sum(small_matrix, grid, I, J)

    def test_single_kernel(self, small_matrix):
        res = SKSSLB1R1W().run(small_matrix, GPU(seed=1))
        assert res.kernel_calls == 1

    def test_exactly_three_barrier_phases(self, small_matrix):
        """The paper: 'only three barrier synchronization operations are
        performed' per tile (we count per-tile syncthreads)."""
        res = SKSSLB1R1W().run(small_matrix, GPU(seed=1))
        tiles = (small_matrix.shape[0] // 32) ** 2
        assert res.report.traffic.syncthreads == 3 * tiles

    def test_fewer_blocks_than_tiles_still_correct(self, small_matrix):
        """Blocks loop acquiring serials, so a grid smaller than the tile
        count works (and cannot deadlock thanks to the diagonal order)."""
        res = SKSSLB1R1W(grid_blocks=2).run(
            small_matrix, GPU(device=TINY_DEVICE, seed=3,
                              max_resident_blocks=2))
        assert check_result(res, small_matrix)

    def test_single_block_serializes_fine(self, small_matrix):
        res = SKSSLB1R1W(grid_blocks=1).run(
            small_matrix, GPU(device=TINY_DEVICE, seed=3,
                              max_resident_blocks=1))
        assert check_result(res, small_matrix)

    def test_rowmajor_layout_correct_but_conflicted(self, small_matrix):
        """Ablation: correctness does not depend on the diagonal arrangement,
        only bank conflicts do."""
        diag = SKSSLB1R1W(layout="diagonal").run(small_matrix, GPU(seed=4))
        rowm = SKSSLB1R1W(layout="rowmajor").run(small_matrix, GPU(seed=4))
        assert np.array_equal(diag.sat, rowm.sat)
        assert diag.report.traffic.shared_bank_conflict_cycles == 0
        assert rowm.report.traffic.shared_bank_conflict_cycles > 0

    def test_one_read_one_write_per_element(self, medium_matrix):
        """The 1R1W property with the O(n²/W) allowance."""
        res = SKSSLB1R1W(tile_width=64).run(medium_matrix, GPU(seed=5))
        n2 = medium_matrix.size
        t = res.report.traffic
        assert n2 <= t.global_read_requests <= 1.15 * n2
        assert n2 <= t.global_write_requests <= 1.15 * n2

    def test_relaxed_vs_strong_same_result(self, small_matrix):
        relaxed = SKSSLB1R1W().run(small_matrix,
                                   GPU(seed=6, consistency="relaxed"))
        strong = SKSSLB1R1W().run(small_matrix,
                                  GPU(seed=6, consistency="strong"))
        assert np.array_equal(relaxed.sat, strong.sat)

    def test_float_data(self, rng):
        from repro.analysis.tolerances import (assert_sat_close,
                                               derived_tolerance)
        a = rng.normal(size=(64, 64))
        res = SKSSLB1R1W().run(a, GPU(seed=7))
        tol = derived_tolerance("1R1W-SKSS-LB", a.shape, res.sat.dtype)
        assert_sat_close(res.sat, sat_reference(a), tol, abs_input=a)
