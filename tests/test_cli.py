"""CLI smoke/behaviour tests (direct main() invocation, captured output)."""

import pytest

from repro.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    return code, capsys.readouterr().out


class TestRun:
    def test_default_run(self, capsys):
        code, out = run_cli(capsys, "run", "-n", "64")
        assert code == 0
        assert "1R1W-SKSS-LB" in out
        assert "correct vs reference: True" in out

    def test_host_path(self, capsys):
        code, out = run_cli(capsys, "run", "-n", "64", "--host")
        assert code == 0
        assert "host path" in out

    def test_algorithm_alias(self, capsys):
        code, out = run_cli(capsys, "run", "-n", "64", "-a", "nehab")
        assert code == 0
        assert "2R1W" in out

    def test_detect_uninitialized(self, capsys):
        code, out = run_cli(capsys, "run", "-n", "64",
                            "--detect-uninitialized")
        assert code == 0

    def test_tile_width(self, capsys):
        code, out = run_cli(capsys, "run", "-n", "128", "-W", "64")
        assert code == 0


class TestTables:
    def test_table1(self, capsys):
        code, out = run_cli(capsys, "table1")
        assert code == 0
        assert "1R1W-SKSS-LB" in out and "kernel calls" in out

    def test_table1_measured(self, capsys):
        code, out = run_cli(capsys, "table1", "--measure",
                            "--measure-size", "64")
        assert code == 0
        assert "measured on the simulator" in out
        assert "OK" in out

    def test_table3(self, capsys):
        code, out = run_cli(capsys, "table3")
        assert code == 0
        assert "matrix duplication" in out and "(paper)" in out

    def test_table3_no_paper(self, capsys):
        code, out = run_cli(capsys, "table3", "--no-paper")
        assert code == 0
        assert "(paper)" not in out


class TestSweeps:
    def test_sweep_w(self, capsys):
        code, out = run_cli(capsys, "sweep-w", "-n", "1024")
        assert code == 0
        assert "W=32" in out and "W=128" in out

    def test_sweep_w_skips_incompatible(self, capsys):
        code, out = run_cli(capsys, "sweep-w", "-n", "96")
        assert code == 0
        assert "skipped" in out

    def test_sweep_r(self, capsys):
        code, out = run_cli(capsys, "sweep-r", "-n", "1024")
        assert code == 0
        assert "best r:" in out


class TestExport:
    def test_export_writes_files(self, capsys, tmp_path):
        code, out = run_cli(capsys, "export", "-o", str(tmp_path), "-n", "256")
        assert code == 0
        assert (tmp_path / "table3.csv").exists()
        assert (tmp_path / "table1.json").exists()
        assert out.count("wrote") == 4


class TestSanitize:
    def test_sanitize_default_is_clean(self, capsys):
        code, out = run_cli(capsys, "sanitize", "-n", "32")
        assert code == 0
        assert "kernel lint: 0 finding(s)" in out
        assert "sanitize:" in out and "OK" in out
        assert "1R1W-SKSS-LB" in out  # all seven algorithms ran

    def test_sanitize_single_algorithm(self, capsys):
        code, out = run_cli(capsys, "sanitize", "-n", "32", "-a", "skss-lb",
                            "--consistency", "relaxed", "--policy", "lifo",
                            "--residency", "2")
        assert code == 0
        assert out.count("n=32") == 1 and "1 run(s) -> OK" in out

    def test_sanitize_lint_only(self, capsys):
        code, out = run_cli(capsys, "sanitize", "--no-dynamic")
        assert code == 0
        assert "kernel lint" in out and "sanitize:" not in out

    def test_fuzz_sanitize(self, capsys):
        code, out = run_cli(capsys, "fuzz", "--runs", "3", "--sanitize")
        assert code == 0
        assert "OK" in out

    def test_fuzz_replay_inline_and_file(self, capsys, tmp_path):
        from repro.analysis import FuzzConfig
        config = FuzzConfig(algorithm="2R2W", n=32, tile_width=32,
                            policy="lifo", sim_seed=1, data_seed=2,
                            residency=2, consistency="relaxed",
                            tiny_device=True)
        code, out = run_cli(capsys, "fuzz", "--replay", config.to_json(),
                            "--sanitize")
        assert code == 0
        assert "replay: OK" in out
        path = tmp_path / "c.json"
        path.write_text(config.to_json())
        code, out = run_cli(capsys, "fuzz", "--replay", str(path))
        assert code == 0
        assert "replay: OK" in out

    def test_fuzz_replay_bad_config_raises(self, capsys):
        from repro.errors import ConfigurationError
        with pytest.raises(ConfigurationError):
            run_cli(capsys, "fuzz", "--replay", '{"algorithm": "2R2W"}')

    def test_sanitize_includes_incremental_check(self, capsys):
        code, out = run_cli(capsys, "sanitize", "-n", "32", "-a", "skss-lb")
        assert code == 0
        assert "incremental state retention: 0 finding(s)" in out

    def test_sanitize_no_incremental_skips_check(self, capsys):
        code, out = run_cli(capsys, "sanitize", "-n", "32", "-a", "skss-lb",
                            "--no-incremental")
        assert code == 0
        assert "incremental state retention" not in out


class TestIncremental:
    def test_fuzz_incremental_mode(self, capsys):
        code, out = run_cli(capsys, "fuzz", "--runs", "5", "--mode",
                            "incremental")
        assert code == 0
        assert "OK" in out

    def test_fuzz_incremental_replay(self, capsys):
        import numpy as np

        from repro.analysis.fuzzing import sample_incremental_config
        config = sample_incremental_config(np.random.default_rng(9))
        code, out = run_cli(capsys, "fuzz", "--replay", config.to_json())
        assert code == 0
        assert "replay: OK" in out

    def test_incremental_bench(self, capsys, tmp_path):
        import json
        path = tmp_path / "bench.json"
        code, out = run_cli(capsys, "incremental-bench", "-n", "128",
                            "--edits", "2", "--json", str(path))
        assert code == 0
        assert "bit-identical to from-scratch: True" in out
        record = json.loads(path.read_text())
        assert record["bit_identical"] is True
        assert record["speedup_mean"] > 0

    def test_incremental_bench_recompute_strategy(self, capsys):
        code, out = run_cli(capsys, "incremental-bench", "-n", "128",
                            "--edits", "2", "--dtype", "float64",
                            "--strategy", "recompute")
        assert code == 0
        assert "strategy=recompute" in out


class TestDistributed:
    def test_run_engine_distributed(self, capsys):
        code, out = run_cli(capsys, "run", "-n", "48", "--engine",
                            "distributed", "--shards", "3")
        assert code == 0
        assert "correct vs reference: True" in out

    def test_run_shards_without_distributed_rejected(self, capsys):
        from repro.errors import ConfigurationError
        with pytest.raises(ConfigurationError,
                           match="--engine distributed"):
            run_cli(capsys, "run", "-n", "48", "--shards", "3")
        with pytest.raises(ConfigurationError,
                           match="--engine distributed"):
            run_cli(capsys, "run", "-n", "48", "--engine", "wavefront",
                    "--shards", "3")

    def test_fuzz_distsat_mode(self, capsys):
        code, out = run_cli(capsys, "fuzz", "--mode", "distsat",
                            "--runs", "6", "--seed", "1")
        assert code == 0
        assert "OK" in out

    def test_fuzz_distsat_replay(self, capsys, tmp_path):
        import numpy as np

        from repro.analysis.fuzzing import sample_distsat_config
        config = sample_distsat_config(np.random.default_rng(2))
        path = tmp_path / "distsat.json"
        path.write_text(config.to_json())
        code, out = run_cli(capsys, "fuzz", "--replay", str(path))
        assert code == 0
        assert "replay: OK" in out


class TestCostcheck:
    def test_static_only_passes(self, capsys):
        code, out = run_cli(capsys, "costcheck", "--no-crossval")
        assert code == 0
        assert "PASS" in out
        assert "planted-bug corpus" in out
        assert "1R1W-SKSS-LB" in out

    def test_crossval_single_algorithm(self, capsys):
        code, out = run_cli(capsys, "costcheck", "-a", "2R2W", "-n", "64",
                            "--no-corpus", "--no-overflow")
        assert code == 0
        assert "column_scan_kernel: ok (exact)" in out

    def test_json_export(self, capsys, tmp_path):
        import json
        path = tmp_path / "costcheck.json"
        code, out = run_cli(capsys, "costcheck", "--no-crossval",
                            "--json", str(path))
        assert code == 0
        payload = json.loads(path.read_text())
        assert payload["ok"] is True
        assert len(payload["algorithms"]) == 7

    def test_fuzz_cost_mode(self, capsys):
        code, out = run_cli(capsys, "fuzz", "--runs", "4", "--mode", "cost")
        assert code == 0
        assert "OK" in out


class TestNumcheck:
    def test_small_static_run_passes(self, capsys):
        code, out = run_cli(capsys, "numcheck", "-a", "1R1W-SKSS-LB",
                            "-n", "128", "--no-device")
        assert code == 0
        assert "PASS" in out
        assert "D = 6*t + 5*W + 3" in out
        assert "rounding-roundtrip" in out   # the planted corpus ran

    def test_json_export(self, capsys, tmp_path):
        import json
        path = tmp_path / "numcheck.json"
        code, out = run_cli(capsys, "numcheck", "-a", "2R1W", "-n", "128",
                            "--no-device", "--no-corpus",
                            "--json", str(path))
        assert code == 0
        payload = json.loads(path.read_text())
        assert payload["ok"] is True
        assert payload["algorithms"][0]["depth"] == "4*t + 5*W - 1"
        assert all(r["ok"] for r in payload["validation"])

    def test_fuzz_numeric_mode(self, capsys):
        code, out = run_cli(capsys, "fuzz", "--runs", "4",
                            "--mode", "numeric")
        assert code == 0
        assert "OK" in out


class TestMisc:
    def test_trace(self, capsys):
        code, out = run_cli(capsys, "trace", "-n", "64")
        assert code == 0
        assert "legend" in out and "correct=True" in out

    def test_list(self, capsys):
        code, out = run_cli(capsys, "list")
        assert code == 0
        for name in ("2R2W", "1R1W-SKSS-LB", "aliases"):
            assert name in out

    def test_list_json_carries_proven_error_bounds(self, capsys):
        """The machine-readable listing pins every algorithm's proven
        rounding bound; a kernel change that shifts a closed form must
        show up here (drift pin, numcheck is the source)."""
        import json
        code, out = run_cli(capsys, "list", "--json", "-")
        assert code == 0
        payload = json.loads(out)
        bounds = payload["error_bounds"]
        assert bounds["1R1W-SKSS-LB"] == \
            "|err| <= gamma_D * SAT(|a|), D = 6*t + 5*W + 3"
        assert bounds["1R1W"] == \
            "|err| <= gamma_D * SAT(|a|), D = 2*t*W + 3*t + 2*W"
        assert set(bounds) == {"2R2W", "2R2W-optimal", "2R1W", "1R1W",
                               "(1+r)R1W", "1R1W-SKSS", "1R1W-SKSS-LB"}

    def test_no_command_exits(self):
        with pytest.raises(SystemExit):
            main([])

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
