"""Every example script must run cleanly (they are part of the public API)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[1] / "examples"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))

#: Examples that sweep every algorithm on the simulator — slow tier.
_SLOW_EXAMPLES = {"compare_algorithms.py"}


def test_expected_examples_present():
    assert {"quickstart.py", "compare_algorithms.py", "box_filter_demo.py",
            "lookback_trace.py", "performance_table.py",
            "out_of_core_demo.py", "video_stream_demo.py"} <= set(EXAMPLES)


@pytest.mark.parametrize(
    "name", [pytest.param(n, marks=[pytest.mark.slow] * (n in _SLOW_EXAMPLES))
             for n in EXAMPLES])
def test_example_runs(name):
    proc = subprocess.run([sys.executable, str(EXAMPLES_DIR / name)],
                          capture_output=True, text=True, timeout=300)
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), "example produced no output"


def test_quickstart_reports_correct():
    proc = subprocess.run([sys.executable,
                           str(EXAMPLES_DIR / "quickstart.py")],
                          capture_output=True, text=True, timeout=300)
    assert "correct vs reference: True" in proc.stdout


def test_performance_table_headline():
    proc = subprocess.run([sys.executable,
                           str(EXAMPLES_DIR / "performance_table.py")],
                          capture_output=True, text=True, timeout=300)
    assert "fastest at every size: True" in proc.stdout
