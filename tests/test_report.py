"""The one-shot reproduction report generator."""

import pytest

from repro.cli import main
from repro.report import generate_report, write_report

# Report generation runs simulator measurement plus a fuzz session per test.
pytestmark = pytest.mark.slow


class TestReport:
    def test_contains_all_sections(self):
        text = generate_report(measure_size=64, fuzz_runs=3)
        for heading in ("# Reproduction report", "## Table I",
                        "## Table III", "## Dependence-parallelism",
                        "## Cross-device", "## Differential fuzzing",
                        "## float32 precision"):
            assert heading in text

    def test_measured_counts_all_ok(self):
        text = generate_report(measure_size=64, fuzz_runs=1)
        assert "[OK ]" in text
        assert "FAIL" not in text.replace("FAILURES", "")

    def test_fuzz_clean(self):
        text = generate_report(measure_size=64, fuzz_runs=4)
        assert "-> OK" in text

    def test_write_report(self, tmp_path):
        path = tmp_path / "report.md"
        write_report(str(path), measure_size=64, fuzz_runs=2)
        assert path.read_text().startswith("# Reproduction report")

    def test_cli_report(self, tmp_path, capsys):
        out_path = tmp_path / "r.md"
        code = main(["report", "-o", str(out_path), "--measure-size", "64",
                     "--fuzz-runs", "2"])
        assert code == 0
        assert out_path.exists()
        assert "wrote" in capsys.readouterr().out
